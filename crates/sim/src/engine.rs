//! The experiment engine: job-level parallel execution with deterministic results.
//!
//! Every evaluation in this crate — the P/A/S/R/I design comparison, the ASR
//! best-of-six selection, the Figure 11 cluster sweep, and the scenario
//! matrices of [`crate::scenario`] — reduces to the same shape: a flat list
//! of independent simulation jobs whose results must be assembled in a fixed
//! order. [`ExperimentEngine`] runs such a list on a bounded worker pool.
//! Workers claim jobs from a shared counter (so a long ASR run cannot
//! serialise a whole workload behind it, the load imbalance the per-workload
//! threading suffered from) and write each result into the slot indexed by
//! its job, so the output is ordered by job index and **identical for every
//! worker-pool size**.
//!
//! Two execution modes share that machinery:
//!
//! * [`ExperimentEngine::run`] — fail fast. The first panicking job stops
//!   the pool and the *original* panic payload is re-raised on the caller's
//!   thread (not a secondary poisoned-lock error, and not the anonymous
//!   "a scoped thread panicked" that `std::thread::scope` would raise).
//! * [`ExperimentEngine::run_supervised`] — quarantine. Every job runs in
//!   [`std::panic::catch_unwind`] with a bounded number of retries; each
//!   slot yields `Result<T, JobFailure>`, so one poisoned scenario becomes
//!   a failure record while every other job still completes.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};

use rnuca_types::retry::RetryPolicy;

/// A bounded worker pool executing job lists with deterministic assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentEngine {
    workers: usize,
}

/// Why a supervised job was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureCause {
    /// Every attempt panicked.
    Panic,
    /// The final attempt exceeded the policy's per-attempt wall-clock
    /// deadline (only from [`ExperimentEngine::run_supervised_detached`]).
    Deadline,
}

impl FailureCause {
    /// Stable lower-case token (`"panic"` / `"deadline"`) used by the
    /// journal's typed failure entries and the warehouse failure column.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureCause::Panic => "panic",
            FailureCause::Deadline => "deadline",
        }
    }

    /// Parses the [`FailureCause::as_str`] token back.
    pub fn parse(token: &str) -> Option<Self> {
        match token {
            "panic" => Some(FailureCause::Panic),
            "deadline" => Some(FailureCause::Deadline),
            _ => None,
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A quarantined job failure from [`ExperimentEngine::run_supervised`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted job list.
    pub job: usize,
    /// Attempts made (1 + retries) before the job was quarantined.
    pub attempts: u32,
    /// Why the final attempt failed.
    pub cause: FailureCause,
    /// The final panic's message (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} failed after {} attempt{} ({}): {}",
            self.job,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.cause,
            self.message
        )
    }
}

/// A raw per-slot failure, keeping the boxed panic payload so `run` can
/// re-raise the original panic verbatim.
struct RawFailure {
    attempts: u32,
    payload: Box<dyn Any + Send>,
}

/// The human-readable message inside a panic payload. Panics raised by
/// `panic!("...")` carry `&'static str` or `String`; anything else (a rare
/// `panic_any`) is summarised.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks ignoring poison. A worker that panicked between locking and
/// unlocking a result slot poisons it; the interesting error is the job's
/// panic (kept as a [`RawFailure`] or re-raised by `run`), not the
/// secondary poisoning, so recover the guard instead of masking the root
/// cause with a poisoned-lock `expect`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ExperimentEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        ExperimentEngine {
            workers: default_workers(),
        }
    }

    /// An engine with an explicit worker count (clamped to at least one).
    ///
    /// Results do not depend on the worker count; use this to bound CPU and
    /// memory pressure, or `with_workers(1)` for fully serial debugging runs.
    pub fn with_workers(workers: usize) -> Self {
        ExperimentEngine {
            workers: workers.max(1),
        }
    }

    /// The number of workers this engine runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `run` over every job, returning results in job order.
    ///
    /// `run` receives the job index and the job. It must be a pure function
    /// of both for the engine's determinism guarantee to hold — every worker
    /// count then yields the identical result vector.
    ///
    /// # Panics
    ///
    /// Re-raises the *original* panic payload of the lowest-indexed
    /// panicking job after all workers have stopped claiming. No further
    /// jobs are claimed once a panic is observed, but jobs already in
    /// flight on other workers run to completion first.
    pub fn run<J, T, F>(&self, jobs: &[J], run: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        let mut slots = self.execute(jobs, 0, &RetryPolicy::immediate(0), true, &run);
        // Re-raise the first (lowest-index) failure with its original
        // payload, as if the caller had run that job inline.
        if let Some(pos) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
            let failure = match slots.swap_remove(pos) {
                Some(Err(f)) => f,
                _ => unreachable!("position() found an Err slot"),
            };
            std::panic::resume_unwind(failure.payload);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(result)) => result,
                _ => unreachable!("fail-fast run claims every job or re-raises"),
            })
            .collect()
    }

    /// Runs `run` over every job, quarantining panics instead of
    /// propagating them.
    ///
    /// Each job is attempted up to `1 + retries` times inside
    /// [`catch_unwind`] with *immediate* retries (no backoff, no
    /// deadline); a job whose every attempt panics yields
    /// `Err(`[`JobFailure`]`)` in its slot while all other jobs still run
    /// to completion. Results are in job order and, for deterministic
    /// `run` closures, identical for every worker count. For a paced
    /// retry schedule use [`ExperimentEngine::run_supervised_policy`].
    pub fn run_supervised<J, T, F>(
        &self,
        jobs: &[J],
        retries: u32,
        run: F,
    ) -> Vec<Result<T, JobFailure>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        self.run_supervised_policy(jobs, 0, &RetryPolicy::immediate(retries), run)
    }

    /// [`ExperimentEngine::run_supervised`] with a full [`RetryPolicy`]:
    /// between attempts of job `i` the claiming worker sleeps the policy's
    /// seeded-jitter backoff `delay(seed, i, attempt)` — a pure function of
    /// its arguments, so the pause schedule (like the results) is identical
    /// for every worker count. The policy's `deadline` is **not** enforced
    /// here: borrowed jobs cannot be abandoned mid-attempt; use
    /// [`ExperimentEngine::run_supervised_detached`] when attempts must be
    /// bounded in wall-clock time.
    pub fn run_supervised_policy<J, T, F>(
        &self,
        jobs: &[J],
        seed: u64,
        policy: &RetryPolicy,
        run: F,
    ) -> Vec<Result<T, JobFailure>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        self.execute(jobs, seed, policy, false, &run)
            .into_iter()
            .enumerate()
            .map(|(job, slot)| match slot {
                Some(Ok(result)) => Ok(result),
                Some(Err(failure)) => Err(JobFailure {
                    job,
                    attempts: failure.attempts,
                    cause: FailureCause::Panic,
                    message: payload_message(failure.payload.as_ref()),
                }),
                None => unreachable!("supervised run claims every job"),
            })
            .collect()
    }

    /// The shared pool: workers claim job indices from an atomic counter
    /// and store each job's outcome in its slot, pausing the policy's
    /// seeded backoff between attempts. With `stop_on_failure`, a failed
    /// job stops further claims (slots after the stop stay `None`);
    /// otherwise every job is claimed regardless of failures.
    fn execute<J, T, F>(
        &self,
        jobs: &[J],
        seed: u64,
        policy: &RetryPolicy,
        stop_on_failure: bool,
        run: &F,
    ) -> Vec<Option<Result<T, RawFailure>>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let attempts = policy.attempts();
        let workers = self.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let stopped = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<T, RawFailure>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop_on_failure && stopped.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let mut outcome = None;
                    for attempt in 1..=attempts {
                        if attempt > 1 {
                            let pause = policy.backoff.delay(seed, i, attempt - 1);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                        }
                        match catch_unwind(AssertUnwindSafe(|| run(i, &jobs[i]))) {
                            Ok(result) => {
                                outcome = Some(Ok(result));
                                break;
                            }
                            Err(payload) => {
                                outcome = Some(Err(RawFailure {
                                    attempts: attempt,
                                    payload,
                                }));
                            }
                        }
                    }
                    let outcome = outcome.expect("at least one attempt ran");
                    if outcome.is_err() && stop_on_failure {
                        stopped.store(true, Ordering::Release);
                    }
                    *lock(&slots[i]) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }

    /// Supervised execution with per-attempt wall-clock deadlines and a
    /// cooperative stop flag — the experiment service's execution mode.
    ///
    /// Each attempt runs on a *detached* thread that reports its outcome
    /// over a channel; the claiming worker acts as the watchdog, waiting at
    /// most `policy.deadline` for the report. An attempt that overruns is
    /// abandoned (threads cannot be killed; the stray thread finishes into
    /// a disconnected channel and its result is dropped — `run` must
    /// therefore be side-effect-free, with journaling done by the caller
    /// on received results only) and counts as a failed attempt with
    /// [`FailureCause::Deadline`]. Retries pause on the policy's seeded
    /// backoff, exactly like [`ExperimentEngine::run_supervised_policy`].
    ///
    /// `stop` is checked before each claim: once set, workers stop claiming
    /// and in-flight attempts run to completion — the `drain` half of the
    /// service protocol. Unclaimed slots come back as `None` (never
    /// attempted), claimed ones as `Some(result)`.
    ///
    /// The `Arc`/`'static` bounds exist because abandoned attempt threads
    /// may outlive this call; they keep the jobs and closure alive instead
    /// of dangling.
    pub fn run_supervised_detached<J, T, F>(
        &self,
        jobs: Arc<Vec<J>>,
        seed: u64,
        policy: &RetryPolicy,
        stop: &AtomicBool,
        run: Arc<F>,
    ) -> Vec<Option<Result<T, JobFailure>>>
    where
        J: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(usize, &J) -> T + Send + Sync + 'static,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let attempts = policy.attempts();
        let workers = self.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let mut outcome = None;
                    for attempt in 1..=attempts {
                        if attempt > 1 {
                            let pause = policy.backoff.delay(seed, i, attempt - 1);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                        }
                        match self.attempt_detached(&jobs, i, policy, &run) {
                            Ok(result) => {
                                outcome = Some(Ok(result));
                                break;
                            }
                            Err(cause_message) => {
                                outcome = Some(Err(JobFailure {
                                    job: i,
                                    attempts: attempt,
                                    cause: cause_message.0,
                                    message: cause_message.1,
                                }));
                            }
                        }
                    }
                    *lock(&slots[i]) = Some(outcome.expect("at least one attempt ran"));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }

    /// One watchdogged attempt of job `i`: spawn the attempt detached,
    /// wait at most the policy deadline for its report.
    fn attempt_detached<J, T, F>(
        &self,
        jobs: &Arc<Vec<J>>,
        i: usize,
        policy: &RetryPolicy,
        run: &Arc<F>,
    ) -> Result<T, (FailureCause, String)>
    where
        J: Send + Sync + 'static,
        T: Send + 'static,
        F: Fn(usize, &J) -> T + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let jobs = Arc::clone(jobs);
        let run = Arc::clone(run);
        std::thread::spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| run(i, &jobs[i])));
            // The watchdog may have given up and dropped the receiver; a
            // failed send just discards the late result.
            let _ = tx.send(result);
        });
        let report = match policy.deadline {
            Some(deadline) => rx.recv_timeout(deadline).map_err(|_| {
                (
                    FailureCause::Deadline,
                    format!("attempt exceeded the {deadline:?} deadline (abandoned)"),
                )
            })?,
            None => rx.recv().expect("attempt thread always reports"),
        };
        report.map_err(|payload| (FailureCause::Panic, payload_message(payload.as_ref())))
    }
}

impl Default for ExperimentEngine {
    fn default() -> Self {
        ExperimentEngine::new()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::failpoint::{self, FailAction, FailSpec};

    #[test]
    fn results_are_ordered_by_job_index() {
        let jobs: Vec<usize> = (0..100).collect();
        let results = ExperimentEngine::with_workers(7).run(&jobs, |i, &j| {
            assert_eq!(i, j);
            j * 3
        });
        assert_eq!(results, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_for_every_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let reference = ExperimentEngine::with_workers(1).run(&jobs, |_, &j| j * j + 1);
        for workers in [2, 3, 8, 64] {
            let out = ExperimentEngine::with_workers(workers).run(&jobs, |_, &j| j * j + 1);
            assert_eq!(out, reference, "worker count {workers} changed the output");
        }
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let jobs: Vec<u32> = Vec::new();
        let out: Vec<u32> = ExperimentEngine::new().run(&jobs, |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![10, 20];
        let out = ExperimentEngine::with_workers(16).run(&jobs, |_, &j| j + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        assert_eq!(ExperimentEngine::with_workers(0).workers(), 1);
        assert!(ExperimentEngine::new().workers() >= 1);
        assert_eq!(ExperimentEngine::default(), ExperimentEngine::new());
    }

    #[test]
    fn run_propagates_the_original_panic_payload() {
        let jobs: Vec<usize> = (0..20).collect();
        let caught = std::panic::catch_unwind(|| {
            ExperimentEngine::with_workers(4).run(&jobs, |_, &j| {
                if j == 7 {
                    panic!("scenario {j} exploded");
                }
                j
            })
        })
        .expect_err("run must propagate the job panic");
        let message = payload_message(caught.as_ref());
        assert_eq!(
            message, "scenario 7 exploded",
            "the original payload must survive, not a poisoned-lock expect"
        );
    }

    #[test]
    fn run_propagates_the_lowest_indexed_panic() {
        let jobs: Vec<usize> = (0..30).collect();
        let caught = std::panic::catch_unwind(|| {
            ExperimentEngine::with_workers(8).run(&jobs, |_, &j| {
                if j == 5 || j == 23 {
                    panic!("boom at {j}");
                }
                j
            })
        })
        .expect_err("run must propagate a job panic");
        assert_eq!(payload_message(caught.as_ref()), "boom at 5");
    }

    #[test]
    fn supervised_run_quarantines_exactly_the_failing_job() {
        let jobs: Vec<usize> = (0..25).collect();
        for workers in [1, 3, 8] {
            let out = ExperimentEngine::with_workers(workers).run_supervised(&jobs, 0, |_, &j| {
                if j == 11 {
                    panic!("poisoned scenario {j}");
                }
                j * 2
            });
            assert_eq!(out.len(), jobs.len());
            for (i, slot) in out.iter().enumerate() {
                if i == 11 {
                    let failure = slot.as_ref().expect_err("job 11 must be quarantined");
                    assert_eq!(failure.job, 11);
                    assert_eq!(failure.attempts, 1);
                    assert_eq!(failure.message, "poisoned scenario 11");
                    assert_eq!(failure.cause, FailureCause::Panic);
                    assert_eq!(
                        failure.to_string(),
                        "job 11 failed after 1 attempt (panic): poisoned scenario 11"
                    );
                } else {
                    assert_eq!(slot.as_ref().copied(), Ok(i * 2), "job {i} must complete");
                }
            }
        }
    }

    #[test]
    fn supervised_retries_recover_transient_failures() {
        let jobs = vec![0u32];
        {
            // Arm a fail point that panics on the first two hits only: the
            // third attempt of the same job succeeds.
            let _guard = failpoint::arm(&[FailSpec::window(
                "engine::test::flaky",
                FailAction::Panic,
                1,
                2,
            )]);
            let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 2, |_, &j| {
                failpoint::panic_point("engine::test::flaky");
                j + 100
            });
            assert_eq!(out, vec![Ok(100)]);
        }
        {
            // With the same window but zero retries, the job is quarantined
            // and the failure records a single attempt.
            let _guard = failpoint::arm(&[FailSpec::window(
                "engine::test::flaky",
                FailAction::Panic,
                1,
                2,
            )]);
            let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 0, |_, &j| {
                failpoint::panic_point("engine::test::flaky");
                j + 100
            });
            let failure = out[0].as_ref().expect_err("no retries must quarantine");
            assert_eq!(failure.attempts, 1);
            assert!(failure.message.contains("engine::test::flaky"));
        }
    }

    #[test]
    fn supervised_failures_record_every_attempt() {
        let jobs = vec![0u32];
        let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 3, |_, _| -> u32 {
            panic!("always fails");
        });
        let failure = out[0].as_ref().expect_err("job must fail");
        assert_eq!(failure.attempts, 4, "1 initial try + 3 retries");
        assert_eq!(failure.message, "always fails");
    }

    #[test]
    fn failure_cause_round_trips_its_token() {
        for cause in [FailureCause::Panic, FailureCause::Deadline] {
            assert_eq!(FailureCause::parse(cause.as_str()), Some(cause));
        }
        assert_eq!(FailureCause::parse("cosmic-ray"), None);
    }

    #[test]
    fn policy_backoff_is_identical_across_worker_counts() {
        use rnuca_types::retry::BackoffConfig;
        use std::sync::atomic::AtomicU64;

        // Short real delays so the test observes actual pauses without
        // slowing the suite: base 2 ms, two retries.
        let policy = RetryPolicy::immediate(2).with_backoff(BackoffConfig {
            base_ms: 2,
            cap_ms: 8,
        });
        let jobs: Vec<usize> = (0..12).collect();
        let mut reference: Option<Vec<Result<usize, JobFailure>>> = None;
        for workers in [1, 4] {
            let attempts_seen: Vec<AtomicU64> = jobs.iter().map(|_| AtomicU64::new(0)).collect();
            let out = ExperimentEngine::with_workers(workers).run_supervised_policy(
                &jobs,
                42,
                &policy,
                |i, &j| {
                    // Odd jobs fail once, then succeed on the retry.
                    let attempt = attempts_seen[i].fetch_add(1, Ordering::Relaxed) + 1;
                    if j % 2 == 1 && attempt == 1 {
                        panic!("transient failure in job {j}");
                    }
                    j * 10
                },
            );
            match &reference {
                None => reference = Some(out),
                Some(reference) => {
                    assert_eq!(&out, reference, "worker count {workers} changed the output");
                }
            }
        }
        let reference = reference.unwrap();
        for (i, slot) in reference.iter().enumerate() {
            assert_eq!(slot.as_ref().copied(), Ok(i * 10), "job {i} must recover");
        }
    }

    #[test]
    fn detached_run_enforces_the_deadline_and_keeps_other_jobs() {
        use std::time::Duration;

        let jobs: Vec<u64> = (0..6).collect();
        let policy = RetryPolicy::immediate(0).with_deadline(Duration::from_millis(50));
        let stop = AtomicBool::new(false);
        let out = ExperimentEngine::with_workers(3).run_supervised_detached(
            Arc::new(jobs),
            42,
            &policy,
            &stop,
            Arc::new(|_, &j: &u64| {
                if j == 2 {
                    // Far past the deadline; the attempt is abandoned.
                    std::thread::sleep(Duration::from_secs(5));
                }
                j + 1
            }),
        );
        assert_eq!(out.len(), 6);
        for (i, slot) in out.iter().enumerate() {
            let slot = slot.as_ref().expect("every job is claimed");
            if i == 2 {
                let failure = slot.as_ref().expect_err("job 2 must hit the deadline");
                assert_eq!(failure.cause, FailureCause::Deadline);
                assert_eq!(failure.attempts, 1);
                assert!(failure.message.contains("deadline"), "{}", failure.message);
            } else {
                assert_eq!(slot.as_ref().copied(), Ok(i as u64 + 1));
            }
        }
    }

    #[test]
    fn detached_run_quarantines_panics_with_their_message() {
        let jobs: Vec<u64> = (0..4).collect();
        let stop = AtomicBool::new(false);
        let out = ExperimentEngine::with_workers(2).run_supervised_detached(
            Arc::new(jobs),
            7,
            &RetryPolicy::immediate(1),
            &stop,
            Arc::new(|_, &j: &u64| {
                if j == 3 {
                    panic!("member {j} exploded");
                }
                j
            }),
        );
        let failure = out[3]
            .as_ref()
            .expect("claimed")
            .as_ref()
            .expect_err("job 3 must fail");
        assert_eq!(failure.cause, FailureCause::Panic);
        assert_eq!(failure.attempts, 2, "one retry was spent");
        assert_eq!(failure.message, "member 3 exploded");
    }

    #[test]
    fn detached_run_stops_claiming_once_the_stop_flag_is_set() {
        // One worker, stop flag raised by the first job: the remaining
        // jobs must never be claimed (their slots stay None) — the `drain`
        // behaviour of the experiment service.
        let jobs: Vec<u64> = (0..5).collect();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_from_job = Arc::clone(&stop);
        let out = ExperimentEngine::with_workers(1).run_supervised_detached(
            Arc::new(jobs),
            0,
            &RetryPolicy::immediate(0),
            &stop,
            Arc::new(move |_, &j: &u64| {
                stop_from_job.store(true, Ordering::Release);
                j
            }),
        );
        assert_eq!(
            out[0].as_ref().expect("first job ran").as_ref().copied(),
            Ok(0)
        );
        for slot in &out[1..] {
            assert!(slot.is_none(), "drained jobs must never be claimed");
        }
    }
}
