//! The experiment engine: job-level parallel execution with deterministic results.
//!
//! Every evaluation in this crate — the P/A/S/R/I design comparison, the ASR
//! best-of-six selection, the Figure 11 cluster sweep, and the scenario
//! matrices of [`crate::scenario`] — reduces to the same shape: a flat list
//! of independent simulation jobs whose results must be assembled in a fixed
//! order. [`ExperimentEngine`] runs such a list on a bounded worker pool.
//! Workers claim jobs from a shared counter (so a long ASR run cannot
//! serialise a whole workload behind it, the load imbalance the per-workload
//! threading suffered from) and write each result into the slot indexed by
//! its job, so the output is ordered by job index and **identical for every
//! worker-pool size**.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A bounded worker pool executing job lists with deterministic assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentEngine {
    workers: usize,
}

impl ExperimentEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        ExperimentEngine {
            workers: default_workers(),
        }
    }

    /// An engine with an explicit worker count (clamped to at least one).
    ///
    /// Results do not depend on the worker count; use this to bound CPU and
    /// memory pressure, or `with_workers(1)` for fully serial debugging runs.
    pub fn with_workers(workers: usize) -> Self {
        ExperimentEngine {
            workers: workers.max(1),
        }
    }

    /// The number of workers this engine runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `run` over every job, returning results in job order.
    ///
    /// `run` receives the job index and the job. It must be a pure function
    /// of both for the engine's determinism guarantee to hold — every worker
    /// count then yields the identical result vector.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after all workers have stopped.
    pub fn run<J, T, F>(&self, jobs: &[J], run: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let result = run(i, &jobs[i]);
                    *slots[i].lock().expect("result slot lock poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock poisoned")
                    .expect("every claimed job stores a result")
            })
            .collect()
    }
}

impl Default for ExperimentEngine {
    fn default() -> Self {
        ExperimentEngine::new()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_ordered_by_job_index() {
        let jobs: Vec<usize> = (0..100).collect();
        let results = ExperimentEngine::with_workers(7).run(&jobs, |i, &j| {
            assert_eq!(i, j);
            j * 3
        });
        assert_eq!(results, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_for_every_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let reference = ExperimentEngine::with_workers(1).run(&jobs, |_, &j| j * j + 1);
        for workers in [2, 3, 8, 64] {
            let out = ExperimentEngine::with_workers(workers).run(&jobs, |_, &j| j * j + 1);
            assert_eq!(out, reference, "worker count {workers} changed the output");
        }
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let jobs: Vec<u32> = Vec::new();
        let out: Vec<u32> = ExperimentEngine::new().run(&jobs, |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![10, 20];
        let out = ExperimentEngine::with_workers(16).run(&jobs, |_, &j| j + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        assert_eq!(ExperimentEngine::with_workers(0).workers(), 1);
        assert!(ExperimentEngine::new().workers() >= 1);
        assert_eq!(ExperimentEngine::default(), ExperimentEngine::new());
    }
}
