//! The experiment engine: job-level parallel execution with deterministic results.
//!
//! Every evaluation in this crate — the P/A/S/R/I design comparison, the ASR
//! best-of-six selection, the Figure 11 cluster sweep, and the scenario
//! matrices of [`crate::scenario`] — reduces to the same shape: a flat list
//! of independent simulation jobs whose results must be assembled in a fixed
//! order. [`ExperimentEngine`] runs such a list on a bounded worker pool.
//! Workers claim jobs from a shared counter (so a long ASR run cannot
//! serialise a whole workload behind it, the load imbalance the per-workload
//! threading suffered from) and write each result into the slot indexed by
//! its job, so the output is ordered by job index and **identical for every
//! worker-pool size**.
//!
//! Two execution modes share that machinery:
//!
//! * [`ExperimentEngine::run`] — fail fast. The first panicking job stops
//!   the pool and the *original* panic payload is re-raised on the caller's
//!   thread (not a secondary poisoned-lock error, and not the anonymous
//!   "a scoped thread panicked" that `std::thread::scope` would raise).
//! * [`ExperimentEngine::run_supervised`] — quarantine. Every job runs in
//!   [`std::panic::catch_unwind`] with a bounded number of retries; each
//!   slot yields `Result<T, JobFailure>`, so one poisoned scenario becomes
//!   a failure record while every other job still completes.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A bounded worker pool executing job lists with deterministic assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentEngine {
    workers: usize,
}

/// A quarantined job failure from [`ExperimentEngine::run_supervised`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted job list.
    pub job: usize,
    /// Attempts made (1 + retries) before the job was quarantined.
    pub attempts: u32,
    /// The final panic's message (or a placeholder for non-string payloads).
    pub message: String,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} failed after {} attempt{}: {}",
            self.job,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

/// A raw per-slot failure, keeping the boxed panic payload so `run` can
/// re-raise the original panic verbatim.
struct RawFailure {
    attempts: u32,
    payload: Box<dyn Any + Send>,
}

/// The human-readable message inside a panic payload. Panics raised by
/// `panic!("...")` carry `&'static str` or `String`; anything else (a rare
/// `panic_any`) is summarised.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks ignoring poison. A worker that panicked between locking and
/// unlocking a result slot poisons it; the interesting error is the job's
/// panic (kept as a [`RawFailure`] or re-raised by `run`), not the
/// secondary poisoning, so recover the guard instead of masking the root
/// cause with a poisoned-lock `expect`.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ExperimentEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> Self {
        ExperimentEngine {
            workers: default_workers(),
        }
    }

    /// An engine with an explicit worker count (clamped to at least one).
    ///
    /// Results do not depend on the worker count; use this to bound CPU and
    /// memory pressure, or `with_workers(1)` for fully serial debugging runs.
    pub fn with_workers(workers: usize) -> Self {
        ExperimentEngine {
            workers: workers.max(1),
        }
    }

    /// The number of workers this engine runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `run` over every job, returning results in job order.
    ///
    /// `run` receives the job index and the job. It must be a pure function
    /// of both for the engine's determinism guarantee to hold — every worker
    /// count then yields the identical result vector.
    ///
    /// # Panics
    ///
    /// Re-raises the *original* panic payload of the lowest-indexed
    /// panicking job after all workers have stopped claiming. No further
    /// jobs are claimed once a panic is observed, but jobs already in
    /// flight on other workers run to completion first.
    pub fn run<J, T, F>(&self, jobs: &[J], run: F) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        let mut slots = self.execute(jobs, 1, true, &run);
        // Re-raise the first (lowest-index) failure with its original
        // payload, as if the caller had run that job inline.
        if let Some(pos) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
            let failure = match slots.swap_remove(pos) {
                Some(Err(f)) => f,
                _ => unreachable!("position() found an Err slot"),
            };
            std::panic::resume_unwind(failure.payload);
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Some(Ok(result)) => result,
                _ => unreachable!("fail-fast run claims every job or re-raises"),
            })
            .collect()
    }

    /// Runs `run` over every job, quarantining panics instead of
    /// propagating them.
    ///
    /// Each job is attempted up to `1 + retries` times inside
    /// [`catch_unwind`]; a job whose every attempt panics yields
    /// `Err(`[`JobFailure`]`)` in its slot while all other jobs still run
    /// to completion. Results are in job order and, for deterministic
    /// `run` closures, identical for every worker count.
    pub fn run_supervised<J, T, F>(
        &self,
        jobs: &[J],
        retries: u32,
        run: F,
    ) -> Vec<Result<T, JobFailure>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        self.execute(jobs, retries.saturating_add(1), false, &run)
            .into_iter()
            .enumerate()
            .map(|(job, slot)| match slot {
                Some(Ok(result)) => Ok(result),
                Some(Err(failure)) => Err(JobFailure {
                    job,
                    attempts: failure.attempts,
                    message: payload_message(failure.payload.as_ref()),
                }),
                None => unreachable!("supervised run claims every job"),
            })
            .collect()
    }

    /// The shared pool: workers claim job indices from an atomic counter
    /// and store each job's outcome in its slot. With `stop_on_failure`,
    /// a failed job stops further claims (slots after the stop stay
    /// `None`); otherwise every job is claimed regardless of failures.
    fn execute<J, T, F>(
        &self,
        jobs: &[J],
        attempts: u32,
        stop_on_failure: bool,
        run: &F,
    ) -> Vec<Option<Result<T, RawFailure>>>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let attempts = attempts.max(1);
        let workers = self.workers.min(jobs.len());
        let next = AtomicUsize::new(0);
        let stopped = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<T, RawFailure>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop_on_failure && stopped.load(Ordering::Acquire) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let mut outcome = None;
                    for attempt in 1..=attempts {
                        match catch_unwind(AssertUnwindSafe(|| run(i, &jobs[i]))) {
                            Ok(result) => {
                                outcome = Some(Ok(result));
                                break;
                            }
                            Err(payload) => {
                                outcome = Some(Err(RawFailure {
                                    attempts: attempt,
                                    payload,
                                }));
                            }
                        }
                    }
                    let outcome = outcome.expect("at least one attempt ran");
                    if outcome.is_err() && stop_on_failure {
                        stopped.store(true, Ordering::Release);
                    }
                    *lock(&slots[i]) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}

impl Default for ExperimentEngine {
    fn default() -> Self {
        ExperimentEngine::new()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::failpoint::{self, FailAction, FailSpec};

    #[test]
    fn results_are_ordered_by_job_index() {
        let jobs: Vec<usize> = (0..100).collect();
        let results = ExperimentEngine::with_workers(7).run(&jobs, |i, &j| {
            assert_eq!(i, j);
            j * 3
        });
        assert_eq!(results, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn output_is_identical_for_every_worker_count() {
        let jobs: Vec<u64> = (0..37).collect();
        let reference = ExperimentEngine::with_workers(1).run(&jobs, |_, &j| j * j + 1);
        for workers in [2, 3, 8, 64] {
            let out = ExperimentEngine::with_workers(workers).run(&jobs, |_, &j| j * j + 1);
            assert_eq!(out, reference, "worker count {workers} changed the output");
        }
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let jobs: Vec<u32> = Vec::new();
        let out: Vec<u32> = ExperimentEngine::new().run(&jobs, |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = vec![10, 20];
        let out = ExperimentEngine::with_workers(16).run(&jobs, |_, &j| j + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        assert_eq!(ExperimentEngine::with_workers(0).workers(), 1);
        assert!(ExperimentEngine::new().workers() >= 1);
        assert_eq!(ExperimentEngine::default(), ExperimentEngine::new());
    }

    #[test]
    fn run_propagates_the_original_panic_payload() {
        let jobs: Vec<usize> = (0..20).collect();
        let caught = std::panic::catch_unwind(|| {
            ExperimentEngine::with_workers(4).run(&jobs, |_, &j| {
                if j == 7 {
                    panic!("scenario {j} exploded");
                }
                j
            })
        })
        .expect_err("run must propagate the job panic");
        let message = payload_message(caught.as_ref());
        assert_eq!(
            message, "scenario 7 exploded",
            "the original payload must survive, not a poisoned-lock expect"
        );
    }

    #[test]
    fn run_propagates_the_lowest_indexed_panic() {
        let jobs: Vec<usize> = (0..30).collect();
        let caught = std::panic::catch_unwind(|| {
            ExperimentEngine::with_workers(8).run(&jobs, |_, &j| {
                if j == 5 || j == 23 {
                    panic!("boom at {j}");
                }
                j
            })
        })
        .expect_err("run must propagate a job panic");
        assert_eq!(payload_message(caught.as_ref()), "boom at 5");
    }

    #[test]
    fn supervised_run_quarantines_exactly_the_failing_job() {
        let jobs: Vec<usize> = (0..25).collect();
        for workers in [1, 3, 8] {
            let out = ExperimentEngine::with_workers(workers).run_supervised(&jobs, 0, |_, &j| {
                if j == 11 {
                    panic!("poisoned scenario {j}");
                }
                j * 2
            });
            assert_eq!(out.len(), jobs.len());
            for (i, slot) in out.iter().enumerate() {
                if i == 11 {
                    let failure = slot.as_ref().expect_err("job 11 must be quarantined");
                    assert_eq!(failure.job, 11);
                    assert_eq!(failure.attempts, 1);
                    assert_eq!(failure.message, "poisoned scenario 11");
                    assert_eq!(
                        failure.to_string(),
                        "job 11 failed after 1 attempt: poisoned scenario 11"
                    );
                } else {
                    assert_eq!(slot.as_ref().copied(), Ok(i * 2), "job {i} must complete");
                }
            }
        }
    }

    #[test]
    fn supervised_retries_recover_transient_failures() {
        let jobs = vec![0u32];
        {
            // Arm a fail point that panics on the first two hits only: the
            // third attempt of the same job succeeds.
            let _guard = failpoint::arm(&[FailSpec::window(
                "engine::test::flaky",
                FailAction::Panic,
                1,
                2,
            )]);
            let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 2, |_, &j| {
                failpoint::panic_point("engine::test::flaky");
                j + 100
            });
            assert_eq!(out, vec![Ok(100)]);
        }
        {
            // With the same window but zero retries, the job is quarantined
            // and the failure records a single attempt.
            let _guard = failpoint::arm(&[FailSpec::window(
                "engine::test::flaky",
                FailAction::Panic,
                1,
                2,
            )]);
            let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 0, |_, &j| {
                failpoint::panic_point("engine::test::flaky");
                j + 100
            });
            let failure = out[0].as_ref().expect_err("no retries must quarantine");
            assert_eq!(failure.attempts, 1);
            assert!(failure.message.contains("engine::test::flaky"));
        }
    }

    #[test]
    fn supervised_failures_record_every_attempt() {
        let jobs = vec![0u32];
        let out = ExperimentEngine::with_workers(1).run_supervised(&jobs, 3, |_, _| -> u32 {
            panic!("always fails");
        });
        let failure = out[0].as_ref().expect_err("job must fail");
        assert_eq!(failure.attempts, 4, "1 initial try + 3 retries");
        assert_eq!(failure.message, "always fails");
    }
}
