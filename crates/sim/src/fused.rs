//! Fused multi-design stepping: one trace pass drives N design instances.
//!
//! The paper's headline comparison runs five LLC designs (and six ASR
//! variants) over *identical* reference streams. Since the trace arena every
//! design already replays the same memoized slab — but as independent jobs
//! that each re-walk the stream through their own `CmpSimulator::drive`
//! loop: five passes over the cursor, five rounds of batch decode, five
//! trips through memory for the same 11-byte-per-reference slab.
//!
//! The [`FusedDriver`] turns those N passes into one. It decodes a stride of
//! references from a shared [`TraceSource`] cursor exactly once and steps
//! every design instance over it in 4096-reference chunks via
//! [`CmpSimulator::step_batch`] — the per-batch stepping interface `drive`
//! itself is built on — before pulling the next stride. The chunk boundaries
//! each instance observes are `remaining.min(TRACE_BATCH)`, exactly the
//! batch boundaries independent execution uses, so each simulator sees the
//! identical access sequence sliced identically; the multi-batch stride
//! only controls how long a member's working set stays hot in the *host's*
//! caches between member switches.
//!
//! # What is shared, what is per-design
//!
//! Shared across the group: the trace cursor and the decoded batch buffer —
//! pure inputs. Per-design and fully independent: tiles (cache slices and
//! victim buffers), the coherence directory, the OS page classifier with its
//! page table and per-core TLBs, the RNG, the clock, and every statistics
//! accumulator. OS/page classification *looks* shareable — every design
//! observes the same references — but R-NUCA writes its classifier on every
//! access (touch poisoning, pending migrations) while the private designs
//! never consult it, so there is no read-only window to share; each instance
//! keeps its own. The batch buffer is caller-owned scratch that is excluded
//! from snapshot state and simulator equality, so fusing is architecturally
//! invisible: each instance emits the bit-identical [`MeasuredRun`] it would
//! emit running alone (the `fused_differential` suite pins this across all
//! five designs, three core counts, and three seeds).
//!
//! # Grouping
//!
//! A fused group is keyed by shared trace: every member must resolve to the
//! same [`TraceKey`] (same workload profile, same `TraceGeometry`, same
//! seed). Members may differ in design *and* in configuration fields the
//! trace key deliberately ignores (slice capacity, latencies) — each member
//! forks its own warmed checkpoint from the [`SnapshotArena`] exactly as the
//! independent path does, so per-member warm-up state is untouched by
//! fusion. [`group_indices`] builds groups from any job list while
//! preserving job order for scattering results back.

use crate::design::LlcDesign;
use crate::experiment::ExperimentConfig;
use crate::simulator::{CmpSimulator, MeasuredRun, TRACE_BATCH};
use crate::snapshot::SnapshotArena;
use rnuca_types::access::MemoryAccess;
use rnuca_workloads::{TraceArena, TraceKey, TraceSource, WorkloadSpec};
use std::collections::HashMap;
use std::hash::Hash;

/// Batches decoded per stride: the driver fills `FUSE_STRIDE_BATCHES ×`
/// [`TRACE_BATCH`] references at a time and lets each member step the whole
/// stride — in [`TRACE_BATCH`]-bounded chunks — before the next member
/// touches it. Decoding still happens exactly once per reference; the wide
/// stride exists for *host*-cache locality: a simulator's slabs stay hot
/// across 16 consecutive batches instead of being evicted by its group
/// peers after every single batch. Results are invariant in this constant —
/// chunk boundaries are the solo driver's batch boundaries regardless.
const FUSE_STRIDE_BATCHES: usize = 16;

/// Steps N design instances over one shared reference stream, decoding
/// every reference exactly once.
///
/// The driver owns the reusable stride buffer, so a fused pass performs no
/// per-batch allocation — the same property `CmpSimulator::drive` has for
/// a solo pass via its internal `trace_buf`.
#[derive(Debug, Default)]
pub struct FusedDriver {
    stride: Vec<MemoryAccess>,
}

impl FusedDriver {
    /// A driver with an empty stride buffer (grown on first use).
    pub fn new() -> Self {
        FusedDriver::default()
    }

    /// Drives `n` references from `src` through every simulator in `sims`
    /// in one pass: each stride (up to `FUSE_STRIDE_BATCHES` batches) is
    /// decoded once into the shared buffer, then every instance steps it in
    /// `TRACE_BATCH`-bounded chunks before the next stride is pulled.
    ///
    /// The chunk boundaries each simulator observes are exactly the batch
    /// boundaries of `CmpSimulator::drive` (`remaining.min(TRACE_BATCH)`
    /// repeatedly), so per-design results are bit-identical to driving each
    /// simulator over its own cursor.
    pub fn drive(&mut self, sims: &mut [CmpSimulator], src: &mut impl TraceSource, n: usize) {
        let mut remaining = n;
        while remaining > 0 {
            let stride = remaining.min(FUSE_STRIDE_BATCHES * TRACE_BATCH);
            src.fill_into(stride, &mut self.stride);
            for sim in sims.iter_mut() {
                for chunk in self.stride.chunks(TRACE_BATCH) {
                    sim.step_batch(chunk);
                }
            }
            remaining -= stride;
        }
    }

    /// Runs one measured window of `n` references over every simulator in a
    /// single fused pass and returns each instance's [`MeasuredRun`], in
    /// `sims` order.
    ///
    /// Equivalent to calling [`CmpSimulator::run_measured`] on each
    /// simulator with its own cursor at the same position — the window
    /// bracket ([`CmpSimulator::begin_measured`] /
    /// [`CmpSimulator::finish_measured`]) is applied per instance.
    pub fn run_measured(
        &mut self,
        sims: &mut [CmpSimulator],
        src: &mut impl TraceSource,
        n: usize,
    ) -> Vec<MeasuredRun> {
        for sim in sims.iter_mut() {
            sim.begin_measured();
        }
        self.drive(sims, src, n);
        sims.iter().map(CmpSimulator::finish_measured).collect()
    }
}

/// The identity of one fused group: the [`TraceKey`] of the stream every
/// member steps. Jobs fuse exactly when their streams are guaranteed equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FusedGroupKey {
    key: TraceKey,
}

impl FusedGroupKey {
    /// The group `spec` belongs to under `seed`.
    pub fn of(spec: &WorkloadSpec, seed: u64) -> Self {
        FusedGroupKey {
            key: TraceKey::new(spec, seed),
        }
    }

    /// The underlying trace key.
    pub fn trace_key(&self) -> &TraceKey {
        &self.key
    }

    /// Human-readable group label: `workload@Ncores#seed`, e.g.
    /// `OLTP DB2@16c#42`. Derived from the spec's trace key — never from a
    /// display label — so label casing cannot affect grouping.
    pub fn label(&self) -> String {
        format!(
            "{}@{}c#{}",
            self.key.workload(),
            self.key.geometry().num_cores,
            self.key.seed()
        )
    }
}

/// Groups `items` by a key, preserving first-seen group order and, within
/// each group, item order. Returns `(key, indices-into-items)` pairs, so
/// callers can fuse each group and scatter results back to job order.
pub fn group_indices<T, K: Eq + Hash + Clone>(
    items: &[T],
    key_of: impl Fn(&T) -> K,
) -> Vec<(K, Vec<usize>)> {
    let mut groups: Vec<(K, Vec<usize>)> = Vec::new();
    let mut index: HashMap<K, usize> = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let key = key_of(item);
        match index.get(&key) {
            Some(&g) => groups[g].1.push(i),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![i]));
            }
        }
    }
    groups
}

/// Runs one fused group from warmed checkpoints: forks every member from
/// `snapshots`, seats one shared cursor on the group's stream directly after
/// the warm-up prefix, and drives all members through a single measured
/// pass. Returns each member's [`MeasuredRun`] in `members` order.
///
/// Members may carry different specs as long as all resolve to one
/// [`TraceKey`] (slice capacity and latencies are deliberately outside the
/// key); each member forks its own spec's checkpoint, so warm-up state is
/// exactly what the independent [`run_single_forked`] path restores.
///
/// [`run_single_forked`]: crate::experiment::DesignComparison::run_single_forked
///
/// # Panics
///
/// Panics if `members` is empty or if any member's stream key differs from
/// the first member's.
pub fn run_group_forked(
    members: &[(&WorkloadSpec, LlcDesign)],
    cfg: &ExperimentConfig,
    traces: &TraceArena,
    snapshots: &SnapshotArena,
) -> Vec<MeasuredRun> {
    let (first_spec, _) = members.first().expect("a fused group has members");
    let key = TraceKey::new(first_spec, cfg.seed);
    let mut sims: Vec<CmpSimulator> = members
        .iter()
        .map(|(spec, design)| {
            assert_eq!(
                TraceKey::new(spec, cfg.seed),
                key,
                "every member of a fused group steps the same stream"
            );
            // Per-member injection site for the quarantine tests: the site
            // name pins one scenario regardless of worker count or group
            // composition, so a chaos test can poison exactly one job.
            if rnuca_types::failpoint::enabled() {
                rnuca_types::failpoint::panic_point(&format!(
                    "sim::member::{}::{}::{}c",
                    spec.name,
                    design,
                    spec.num_cores()
                ));
            }
            let snap = snapshots.snapshot(
                traces,
                *design,
                spec,
                cfg.seed,
                cfg.warmup_refs,
                cfg.total_refs(),
            );
            snap.fork(*design, spec)
        })
        .collect();
    let mut slice = traces.slice(first_spec, cfg.seed, cfg.total_refs());
    slice.skip(cfg.warmup_refs);
    FusedDriver::new().run_measured(&mut sims, &mut slice, cfg.measured_refs)
}

/// [`run_group_forked`] for the common case of one workload under many
/// designs: fuses `designs` over `spec`'s stream and returns one
/// [`MeasuredRun`] per design, in `designs` order.
pub fn run_fused_forked(
    spec: &WorkloadSpec,
    designs: &[LlcDesign],
    cfg: &ExperimentConfig,
    traces: &TraceArena,
    snapshots: &SnapshotArena,
) -> Vec<MeasuredRun> {
    let members: Vec<(&WorkloadSpec, LlcDesign)> =
        designs.iter().map(|&design| (spec, design)).collect();
    run_group_forked(&members, cfg, traces, snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::AsrPolicy;
    use crate::experiment::DesignComparison;

    #[test]
    fn fused_group_matches_independent_forks_per_design() {
        let spec = WorkloadSpec::oltp_db2();
        let cfg = ExperimentConfig::smoke();
        let designs = [
            LlcDesign::Private,
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
            LlcDesign::Shared,
            LlcDesign::rnuca_default(),
            LlcDesign::Ideal,
        ];
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let fused = run_fused_forked(&spec, &designs, &cfg, &traces, &snapshots);
        for (design, fused_run) in designs.iter().zip(&fused) {
            let solo =
                DesignComparison::run_single_forked(&spec, *design, &cfg, &traces, &snapshots);
            assert_eq!(
                fused_run, &solo.run,
                "{design} must be unaffected by fusion"
            );
        }
        assert_eq!(traces.generations(), 1, "one stream for the whole group");
    }

    #[test]
    fn fused_pass_consumes_the_stream_once() {
        // The point of fusion: N designs, one pass. The arena generates the
        // stream once and the group shares a single cursor, so the slab is
        // walked once per comparison instead of once per design.
        let spec = WorkloadSpec::em3d();
        let cfg = ExperimentConfig::smoke();
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let runs = run_fused_forked(
            &spec,
            &[LlcDesign::Private, LlcDesign::Shared, LlcDesign::Ideal],
            &cfg,
            &traces,
            &snapshots,
        );
        assert_eq!(runs.len(), 3);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces.generations(), 1);
    }

    #[test]
    fn group_members_may_differ_outside_the_trace_key() {
        // Slice capacity is outside the trace key, so two specs differing
        // only in capacity fuse into one group — each forking its own
        // capacity's checkpoint.
        let base = WorkloadSpec::oltp_db2();
        let mut small = base.clone();
        small.config_override = Some(
            base.system_config()
                .with_slice_capacity(512 * 1024)
                .expect("512 KiB slices are a valid sweep point"),
        );
        let cfg = ExperimentConfig::smoke();
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let members = [(&base, LlcDesign::Shared), (&small, LlcDesign::Shared)];
        let fused = run_group_forked(&members, &cfg, &traces, &snapshots);
        for ((spec, design), fused_run) in members.iter().zip(&fused) {
            let solo =
                DesignComparison::run_single_forked(spec, *design, &cfg, &traces, &snapshots);
            assert_eq!(fused_run, &solo.run);
        }
        assert_eq!(traces.len(), 1, "capacity does not change the stream");
        assert_eq!(snapshots.len(), 2, "capacity does change warm-up state");
    }

    #[test]
    #[should_panic(expected = "every member of a fused group steps the same stream")]
    fn mixed_stream_groups_are_rejected() {
        let a = WorkloadSpec::oltp_db2();
        let b = WorkloadSpec::em3d();
        let cfg = ExperimentConfig::smoke();
        run_group_forked(
            &[(&a, LlcDesign::Shared), (&b, LlcDesign::Shared)],
            &cfg,
            &TraceArena::new(),
            &SnapshotArena::new(),
        );
    }

    #[test]
    fn group_indices_preserves_first_seen_and_intra_group_order() {
        let jobs = ["a1", "b1", "a2", "c1", "b2", "a3"];
        let groups = group_indices(&jobs, |j| j.as_bytes()[0]);
        assert_eq!(
            groups,
            vec![(b'a', vec![0, 2, 5]), (b'b', vec![1, 4]), (b'c', vec![3]),]
        );
    }

    #[test]
    fn group_labels_derive_from_the_spec_not_from_display_strings() {
        let spec = WorkloadSpec::oltp_db2();
        let key = FusedGroupKey::of(&spec, 42);
        assert_eq!(key.label(), "OLTP DB2@16c#42");
        // Same spec, same seed → same group, regardless of how any caller
        // cases its display labels.
        assert_eq!(key, FusedGroupKey::of(&spec, 42));
        assert_ne!(key, FusedGroupKey::of(&spec, 43));
    }
}
