//! The sweep journal: an append-only per-job completion log that makes
//! interrupted scenario sweeps resumable.
//!
//! A frontier-scale matrix is a long-lived job; a crash (or an injected
//! fail point) must not vaporise hours of finished scenarios. As a
//! journaled sweep progresses, every completed job appends one fixed-size
//! entry — job index, [`Snap`]-encoded [`MeasuredRun`], FNV-64 checksum —
//! to the journal file. Resume replays the journal, verifies that its
//! header matches the matrix being run (fingerprint and job count), skips
//! every journaled job, and re-runs only the rest. Because job results are
//! a pure function of `(job, seed)`, the resumed sweep is *bit-identical*
//! to an uninterrupted one — the chaos differential suite pins this down
//! to the warehouse byte level.
//!
//! # File format (version 2)
//!
//! ```text
//! header:  magic "RNUCAJL\0" (8) | version u32 | fingerprint u64 | jobs u64
//! entry:   job u64 | kind u8 | len u32 | payload (len bytes)
//!          | fnv64(job|kind|len|payload)
//! ```
//!
//! All integers little-endian. `kind` is 0 for a completed run — `payload`
//! is the fixed-size [`Snap`] encoding of one [`MeasuredRun`] — or 1 for a
//! *quarantined failure*: a typed record (attempt count, failure cause,
//! panic message) written when supervision gives up on a job, so a resumed
//! sweep skips the poisoned job instead of re-crashing on it. A crash
//! mid-append leaves a torn final entry; replay detects it by length or
//! checksum, drops it, and resume truncates the file back to the last
//! intact entry before appending. Entries appear in completion order
//! (worker-timing dependent), not job order — replay is order-insensitive
//! because every entry names its job.
//!
//! Version 1 files (no `kind` byte) are refused by version, not guessed
//! at: the matrix fingerprint mixes `JOURNAL_VERSION` in, so a stale
//! journal fails the version check with a clear message.

use crate::cpi::DetailedCpi;
use crate::engine::FailureCause;
use crate::simulator::MeasuredRun;
use rnuca_types::failpoint;
use rnuca_types::snap::{Snap, SnapReader};
use rnuca_types::Fnv64;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The journal file's magic bytes.
pub const JOURNAL_MAGIC: &[u8; 8] = b"RNUCAJL\0";

/// Version of the journal format (bumped on any layout change; resume
/// refuses other versions rather than guessing).
pub const JOURNAL_VERSION: u32 = 2;

/// Header size in bytes: magic + version + fingerprint + job count.
const HEADER_LEN: u64 = 8 + 4 + 8 + 8;

/// Entry kind byte: a completed [`MeasuredRun`].
const ENTRY_RUN: u8 = 0;

/// Entry kind byte: a quarantined [`JournalFailure`].
const ENTRY_FAILED: u8 = 1;

/// Bytes before the payload in every entry: job + kind + len.
const ENTRY_PRELUDE: usize = 8 + 1 + 4;

/// Upper bound on a failure entry's payload. A panic message is a line or
/// two; anything bigger means the `len` field is damaged, and believing it
/// would allocate unbounded memory from a corrupt byte.
const MAX_FAILURE_PAYLOAD: usize = 64 * 1024;

/// The fixed [`Snap`]-encoded size of one [`MeasuredRun`] payload.
fn run_payload_len() -> usize {
    let zero = MeasuredRun {
        cpi: DetailedCpi::default(),
        accesses: 0,
        instructions: 0.0,
        off_chip_rate: 0.0,
        l1_to_l1_rate: 0.0,
        misclassification_rate: 0.0,
        reclassifications: 0,
    };
    let mut buf = Vec::new();
    zero.encode(&mut buf);
    buf.len()
}

/// A typed quarantined-failure record: what the journal remembers about a
/// job whose supervision gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalFailure {
    /// Attempts made before the job was quarantined.
    pub attempts: u32,
    /// Why the final attempt failed.
    pub cause: FailureCause,
    /// The final failure's message.
    pub message: String,
}

impl JournalFailure {
    /// Payload encoding: attempts u32 | cause u8 | msg_len u32 | msg bytes.
    fn encode_payload(&self, out: &mut Vec<u8>) {
        self.attempts.encode(out);
        match self.cause {
            FailureCause::Panic => 0u8,
            FailureCause::Deadline => 1u8,
        }
        .encode(out);
        let msg = self.message.as_bytes();
        (msg.len() as u32).encode(out);
        out.extend_from_slice(msg);
    }

    /// Decodes a payload previously written by [`Self::encode_payload`].
    /// Panic-free: the payload passed its entry checksum, so any internal
    /// inconsistency is writer/reader disagreement reported as `Err`.
    fn decode_payload(payload: &[u8]) -> Result<Self, String> {
        if payload.len() < 9 {
            return Err(format!(
                "failure payload is {} bytes, shorter than its fixed fields",
                payload.len()
            ));
        }
        let mut r = SnapReader::new(payload);
        let attempts: u32 = r.get();
        let cause = match r.get::<u8>() {
            0 => FailureCause::Panic,
            1 => FailureCause::Deadline,
            b => return Err(format!("unknown failure cause byte {b}")),
        };
        let msg_len: u32 = r.get();
        if msg_len as usize != payload.len() - 9 {
            return Err(format!(
                "failure message length {msg_len} disagrees with the payload ({} bytes left)",
                payload.len() - 9
            ));
        }
        let message = String::from_utf8_lossy(r.take(msg_len as usize)).into_owned();
        Ok(JournalFailure {
            attempts,
            cause,
            message,
        })
    }
}

/// One intact journal entry, as replay returns it.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEntry {
    /// The job completed; its measured result.
    Run(MeasuredRun),
    /// The job was quarantined; the typed failure record.
    Failed(JournalFailure),
}

/// Why a journal could not be loaded or matched to a matrix.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a journal, or its header is damaged beyond the
    /// tolerated torn tail. `offset` is where decoding stopped making
    /// sense.
    Corrupt {
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong there.
        message: String,
    },
    /// The journal was written by a different matrix: resuming would mix
    /// results from incompatible sweeps.
    FingerprintMismatch {
        /// Fingerprint recorded in the journal header.
        found: u64,
        /// Fingerprint of the matrix being resumed.
        expected: u64,
    },
    /// The journal's job count differs from the matrix's flattened job
    /// list (same guard as the fingerprint, but with a clearer message
    /// when only an axis changed).
    JobCountMismatch {
        /// Job count recorded in the journal header.
        found: u64,
        /// Job count of the matrix being resumed.
        expected: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt { offset, message } => {
                write!(f, "corrupt journal at byte {offset}: {message}")
            }
            JournalError::FingerprintMismatch { found, expected } => write!(
                f,
                "journal fingerprint {found:#018x} does not match this matrix \
                 ({expected:#018x}): it records a different sweep"
            ),
            JournalError::JobCountMismatch { found, expected } => write!(
                f,
                "journal records {found} jobs but this matrix flattens to \
                 {expected}: an axis changed since the journal was written"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Locks ignoring poison: an injected panic inside [`SweepJournal::append`]
/// must not wedge the remaining workers on a poisoned file lock — the
/// interesting failure is the panic itself.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The append side of a sweep journal.
///
/// Shared by every engine worker (appends serialize on an internal lock);
/// each append is flushed immediately so a crash loses at most the entry
/// being written — which replay then drops as a torn tail.
#[derive(Debug)]
pub struct SweepJournal {
    file: Mutex<File>,
}

impl SweepJournal {
    /// Creates (truncating) a journal for a matrix with `jobs` flattened
    /// jobs and the given fingerprint.
    ///
    /// # Errors
    ///
    /// Any error creating or writing the file.
    pub fn create(path: &Path, fingerprint: u64, jobs: u64) -> std::io::Result<Self> {
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(JOURNAL_MAGIC);
        JOURNAL_VERSION.encode(&mut header);
        fingerprint.encode(&mut header);
        jobs.encode(&mut header);
        let mut file = File::create(path)?;
        file.write_all(&header)?;
        file.flush()?;
        Ok(SweepJournal {
            file: Mutex::new(file),
        })
    }

    /// Reopens a journal for appending after [`JournalReplay::load`],
    /// truncating any torn tail the replay detected.
    ///
    /// # Errors
    ///
    /// Any error opening or truncating the file.
    pub fn resume(path: &Path, replay: &JournalReplay) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(SweepJournal {
            file: Mutex::new(file),
        })
    }

    /// Appends one completed job's entry and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Any error writing the file (including an injected one from the
    /// `sweep::journal::append` fail-point site).
    ///
    /// # Panics
    ///
    /// Panics when the `sweep::journal::append` fail point fires with a
    /// panic action (simulating a process killed at a job boundary, before
    /// the entry lands), or when `sweep::journal::torn` fires (simulating a
    /// crash mid-write: half the entry is written, then the panic).
    pub fn append(&self, job: usize, run: &MeasuredRun) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(run_payload_len());
        run.encode(&mut payload);
        self.append_entry(job, ENTRY_RUN, &payload)
    }

    /// Appends one quarantined job's typed failure entry and flushes it —
    /// the journal-side record that lets `--resume` *skip* a poisoned job
    /// instead of re-crashing on it.
    ///
    /// # Errors
    ///
    /// Any error writing the file (including an injected one from the
    /// `sweep::journal::append` fail-point site).
    ///
    /// # Panics
    ///
    /// Same injected fail points as [`SweepJournal::append`].
    pub fn append_failure(&self, job: usize, failure: &JournalFailure) -> std::io::Result<()> {
        let mut payload = Vec::new();
        failure.encode_payload(&mut payload);
        self.append_entry(job, ENTRY_FAILED, &payload)
    }

    /// The shared append path: frame, checksum, fail points, write, flush.
    fn append_entry(&self, job: usize, kind: u8, payload: &[u8]) -> std::io::Result<()> {
        let mut entry = Vec::with_capacity(ENTRY_PRELUDE + payload.len() + 8);
        (job as u64).encode(&mut entry);
        kind.encode(&mut entry);
        (payload.len() as u32).encode(&mut entry);
        entry.extend_from_slice(payload);
        let mut h = Fnv64::new();
        h.write(&entry);
        h.finish().encode(&mut entry);

        let mut file = lock(&self.file);
        failpoint::io_point("sweep::journal::append")?;
        if failpoint::triggered("sweep::journal::torn") {
            let half = entry.len() / 2;
            file.write_all(&entry[..half])?;
            file.flush()?;
            panic!("fail point `sweep::journal::torn` triggered (injected)");
        }
        file.write_all(&entry)?;
        file.flush()
    }
}

/// The replay side: a journal's header and every intact entry.
#[derive(Debug)]
pub struct JournalReplay {
    /// Matrix fingerprint recorded in the header.
    pub fingerprint: u64,
    /// Flattened job count recorded in the header.
    pub jobs: u64,
    /// Per-job journaled state, indexed by job: `Some(entry)` for journaled
    /// jobs (completed or quarantined), `None` for jobs the interrupted
    /// sweep never finished.
    pub entries: Vec<Option<JournalEntry>>,
    /// Whether a torn final entry was detected (and will be truncated away
    /// by [`SweepJournal::resume`]).
    pub torn_tail: bool,
    /// File length up to and including the last intact entry.
    pub valid_len: u64,
}

impl JournalReplay {
    /// Loads and verifies a journal file.
    ///
    /// Header damage is an error; a torn *final* entry (the expected
    /// residue of a crash mid-append) is tolerated — it is dropped,
    /// recorded in [`Self::torn_tail`], and truncated away on resume.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the file cannot be read;
    /// [`JournalError::Corrupt`] when the header or an entry (other than a
    /// torn tail) is damaged.
    pub fn load(path: &Path) -> Result<Self, JournalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize {
            return Err(JournalError::Corrupt {
                offset: bytes.len() as u64,
                message: format!(
                    "journal header truncated ({} of {HEADER_LEN} bytes)",
                    bytes.len()
                ),
            });
        }
        if &bytes[..8] != JOURNAL_MAGIC {
            return Err(JournalError::Corrupt {
                offset: 0,
                message: "not a sweep journal (bad magic)".to_string(),
            });
        }
        let mut r = SnapReader::new(&bytes[8..HEADER_LEN as usize]);
        let version: u32 = r.get();
        if version != JOURNAL_VERSION {
            return Err(JournalError::Corrupt {
                offset: 8,
                message: format!(
                    "journal version {version} is not the supported {JOURNAL_VERSION}"
                ),
            });
        }
        let fingerprint: u64 = r.get();
        let jobs: u64 = r.get();

        let payload_len = run_payload_len();
        let mut entries: Vec<Option<JournalEntry>> = vec![None; jobs as usize];
        let mut pos = HEADER_LEN as usize;
        let mut torn_tail = false;
        while pos < bytes.len() {
            let rest = &bytes[pos..];
            if rest.len() < ENTRY_PRELUDE {
                torn_tail = true;
                break;
            }
            let mut r = SnapReader::new(rest);
            let job: u64 = r.get();
            let kind: u8 = r.get();
            let len: u32 = r.get();
            // Sanity-check the length *before* trusting it: a run payload
            // has exactly one size, and a failure payload is bounded. A
            // wrong length with all its bytes present cannot be a torn
            // tail — it means the writer and reader disagree on the shape.
            // (Truncation alone can never manufacture a bad length: the
            // prelude bytes are intact prefix bytes.)
            let expected = match kind {
                ENTRY_RUN if len as usize == payload_len => payload_len,
                ENTRY_RUN => {
                    return Err(JournalError::Corrupt {
                        offset: (pos + 9) as u64,
                        message: format!(
                            "run entry payload length {len} is not the expected {payload_len}"
                        ),
                    });
                }
                ENTRY_FAILED if (len as usize) <= MAX_FAILURE_PAYLOAD => len as usize,
                ENTRY_FAILED => {
                    return Err(JournalError::Corrupt {
                        offset: (pos + 9) as u64,
                        message: format!(
                            "failure entry payload length {len} exceeds the \
                             {MAX_FAILURE_PAYLOAD}-byte cap"
                        ),
                    });
                }
                other => {
                    return Err(JournalError::Corrupt {
                        offset: (pos + 8) as u64,
                        message: format!("unknown entry kind {other}"),
                    });
                }
            };
            let entry_len = ENTRY_PRELUDE + expected + 8;
            if rest.len() < entry_len {
                torn_tail = true;
                break;
            }
            let mut h = Fnv64::new();
            h.write(&rest[..entry_len - 8]);
            let payload = r.take(expected);
            let stored: u64 = r.get();
            if stored != h.finish() {
                // Checksum damage: tolerated as a torn tail (a crash
                // mid-append is the expected cause). Everything after is
                // dropped too — resume re-runs those jobs, and determinism
                // reproduces their results exactly.
                torn_tail = true;
                break;
            }
            if job >= jobs {
                return Err(JournalError::Corrupt {
                    offset: pos as u64,
                    message: format!("entry names job {job} of a {jobs}-job sweep"),
                });
            }
            let entry = match kind {
                ENTRY_RUN => JournalEntry::Run(MeasuredRun::decode(&mut SnapReader::new(payload))),
                _ => JournalEntry::Failed(JournalFailure::decode_payload(payload).map_err(
                    |message| JournalError::Corrupt {
                        offset: (pos + ENTRY_PRELUDE) as u64,
                        message,
                    },
                )?),
            };
            entries[job as usize] = Some(entry);
            pos += entry_len;
        }
        Ok(JournalReplay {
            fingerprint,
            jobs,
            entries,
            torn_tail,
            valid_len: pos as u64,
        })
    }

    /// Journaled (intact) entries, completed and quarantined alike.
    pub fn completed(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Journaled quarantined failures.
    pub fn failed(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, Some(JournalEntry::Failed(_))))
            .count()
    }

    /// The journaled run for `job`, if it completed successfully.
    pub fn run(&self, job: usize) -> Option<&MeasuredRun> {
        match self.entries.get(job)? {
            Some(JournalEntry::Run(run)) => Some(run),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(x: f64) -> MeasuredRun {
        MeasuredRun {
            cpi: DetailedCpi {
                l2_private_data: x,
                ..DetailedCpi::default()
            },
            accesses: 1000 + x as u64,
            instructions: 5e5,
            off_chip_rate: 0.25,
            l1_to_l1_rate: 0.01,
            misclassification_rate: 0.0,
            reclassifications: 3,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rnuca-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn measured_run_snap_roundtrips() {
        let run = sample_run(1.5);
        let mut buf = Vec::new();
        run.encode(&mut buf);
        assert_eq!(buf.len(), run_payload_len());
        let decoded = MeasuredRun::decode(&mut SnapReader::new(&buf));
        assert_eq!(decoded, run);
    }

    #[test]
    fn journal_roundtrips_and_is_order_insensitive() {
        let path = temp_path("roundtrip");
        let journal = SweepJournal::create(&path, 0xFEED, 5).unwrap();
        // Completion order 3, 0, 4 — job order must come back regardless.
        journal.append(3, &sample_run(3.0)).unwrap();
        journal.append(0, &sample_run(0.0)).unwrap();
        journal.append(4, &sample_run(4.0)).unwrap();
        drop(journal);

        let replay = JournalReplay::load(&path).unwrap();
        assert_eq!(replay.fingerprint, 0xFEED);
        assert_eq!(replay.jobs, 5);
        assert_eq!(replay.completed(), 3);
        assert!(!replay.torn_tail);
        assert_eq!(replay.run(0), Some(&sample_run(0.0)));
        assert_eq!(replay.entries[1], None);
        assert_eq!(replay.run(3), Some(&sample_run(3.0)));
        assert_eq!(replay.run(4), Some(&sample_run(4.0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failure_entries_roundtrip_with_their_cause() {
        let path = temp_path("failure");
        let journal = SweepJournal::create(&path, 0xF00D, 4).unwrap();
        journal.append(0, &sample_run(0.0)).unwrap();
        journal
            .append_failure(
                1,
                &JournalFailure {
                    attempts: 3,
                    cause: FailureCause::Panic,
                    message: "member OLTP DB2 exploded".to_string(),
                },
            )
            .unwrap();
        journal
            .append_failure(
                2,
                &JournalFailure {
                    attempts: 1,
                    cause: FailureCause::Deadline,
                    message: String::new(),
                },
            )
            .unwrap();
        drop(journal);

        let replay = JournalReplay::load(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.completed(), 3);
        assert_eq!(replay.failed(), 2);
        assert_eq!(replay.run(0), Some(&sample_run(0.0)));
        assert_eq!(replay.run(1), None, "a failed job has no run");
        match &replay.entries[1] {
            Some(JournalEntry::Failed(f)) => {
                assert_eq!(f.attempts, 3);
                assert_eq!(f.cause, FailureCause::Panic);
                assert_eq!(f.message, "member OLTP DB2 exploded");
            }
            other => panic!("want Failed, got {other:?}"),
        }
        match &replay.entries[2] {
            Some(JournalEntry::Failed(f)) => {
                assert_eq!(f.cause, FailureCause::Deadline);
                assert_eq!(f.message, "");
            }
            other => panic!("want Failed, got {other:?}"),
        }
        assert_eq!(replay.entries[3], None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_offset_replays_a_prefix_or_rejects_cleanly() {
        // The torn-tail property, exhaustively: whatever byte a crash cuts
        // the file at, resume must either replay an intact prefix of the
        // journaled entries or reject with a typed error — never panic,
        // never fabricate an entry that was not fully written.
        let path = temp_path("every-offset");
        let journal = SweepJournal::create(&path, 0xBEEF, 6).unwrap();
        journal.append(0, &sample_run(0.0)).unwrap();
        journal
            .append_failure(
                1,
                &JournalFailure {
                    attempts: 2,
                    cause: FailureCause::Panic,
                    message: "poisoned".to_string(),
                },
            )
            .unwrap();
        journal.append(2, &sample_run(2.0)).unwrap();
        drop(journal);
        let full = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // The entries the full journal holds, as ground truth.
        let expected = [
            JournalEntry::Run(sample_run(0.0)),
            JournalEntry::Failed(JournalFailure {
                attempts: 2,
                cause: FailureCause::Panic,
                message: "poisoned".to_string(),
            }),
            JournalEntry::Run(sample_run(2.0)),
        ];

        let trunc_path = temp_path("every-offset-trunc");
        for cut in 0..=full.len() {
            std::fs::write(&trunc_path, &full[..cut]).unwrap();
            let outcome = std::panic::catch_unwind(|| JournalReplay::load(&trunc_path));
            let result = outcome
                .unwrap_or_else(|_| panic!("replay panicked on a journal cut at byte {cut}"));
            match result {
                Ok(replay) => {
                    assert!(
                        cut >= HEADER_LEN as usize,
                        "a cut inside the header (byte {cut}) must be rejected"
                    );
                    // Every surviving entry must be one the full journal
                    // wrote, and they must form a prefix in file order:
                    // entry k survives only if its whole frame fits.
                    for (job, entry) in replay.entries.iter().enumerate() {
                        match entry {
                            None => {}
                            Some(e) if job < expected.len() => assert_eq!(
                                e, &expected[job],
                                "cut at byte {cut} fabricated a different entry for job {job}"
                            ),
                            Some(e) => {
                                panic!("cut at byte {cut} fabricated job {job}: {e:?}")
                            }
                        }
                    }
                    let survived = replay.completed();
                    assert!(
                        (replay.valid_len as usize) <= cut,
                        "valid_len must not pass the cut"
                    );
                    assert_eq!(
                        replay.torn_tail,
                        (replay.valid_len as usize) < cut,
                        "bytes past the last intact entry must be flagged torn (cut {cut})"
                    );
                    // Prefix property: entries survive strictly in file
                    // order 0, 1, 2 — a later entry never outlives an
                    // earlier one under pure truncation.
                    for job in 0..survived {
                        assert!(
                            replay.entries[job].is_some(),
                            "cut at byte {cut}: entry {job} missing from a {survived}-entry prefix"
                        );
                    }
                }
                Err(JournalError::Corrupt { .. }) => {
                    assert!(
                        cut < HEADER_LEN as usize,
                        "an intact header with truncated entries (cut {cut}) must replay, \
                         not reject"
                    );
                }
                Err(other) => panic!("cut at byte {cut}: unexpected error {other}"),
            }
        }
        std::fs::remove_file(&trunc_path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_resume_truncates_it() {
        let path = temp_path("torn");
        let journal = SweepJournal::create(&path, 7, 4).unwrap();
        journal.append(0, &sample_run(0.0)).unwrap();
        journal.append(1, &sample_run(1.0)).unwrap();
        drop(journal);
        let intact_len = std::fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: half of job 2's entry.
        let mut entry = Vec::new();
        2u64.encode(&mut entry);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&entry).unwrap();
        drop(file);

        let replay = JournalReplay::load(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.completed(), 2);
        assert_eq!(replay.valid_len, intact_len);

        // Resume truncates the torn tail and appends cleanly after it.
        let journal = SweepJournal::resume(&path, &replay).unwrap();
        journal.append(2, &sample_run(2.0)).unwrap();
        drop(journal);
        let replay = JournalReplay::load(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.completed(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_damage_is_detected_as_a_torn_tail() {
        let path = temp_path("checksum");
        let journal = SweepJournal::create(&path, 7, 2).unwrap();
        journal.append(0, &sample_run(0.0)).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let replay = JournalReplay::load(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.completed(), 0);
        assert_eq!(replay.valid_len, HEADER_LEN);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_is_an_error_with_an_offset() {
        let path = temp_path("header");

        std::fs::write(&path, b"short").unwrap();
        match JournalReplay::load(&path).unwrap_err() {
            JournalError::Corrupt { offset, message } => {
                assert_eq!(offset, 5);
                assert!(message.contains("truncated"));
            }
            other => panic!("want Corrupt, got {other}"),
        }

        std::fs::write(&path, vec![0u8; HEADER_LEN as usize]).unwrap();
        match JournalReplay::load(&path).unwrap_err() {
            JournalError::Corrupt { offset, .. } => assert_eq!(offset, 0),
            other => panic!("want Corrupt, got {other}"),
        }

        let mut header = Vec::new();
        header.extend_from_slice(JOURNAL_MAGIC);
        99u32.encode(&mut header);
        0u64.encode(&mut header);
        0u64.encode(&mut header);
        std::fs::write(&path, &header).unwrap();
        match JournalReplay::load(&path).unwrap_err() {
            JournalError::Corrupt { offset, message } => {
                assert_eq!(offset, 8);
                assert!(message.contains("version 99"));
            }
            other => panic!("want Corrupt, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_job_index_is_corrupt() {
        let path = temp_path("range");
        let journal = SweepJournal::create(&path, 7, 2).unwrap();
        journal.append(9, &sample_run(0.0)).unwrap();
        drop(journal);
        match JournalReplay::load(&path).unwrap_err() {
            JournalError::Corrupt { offset, message } => {
                assert_eq!(offset, HEADER_LEN);
                assert!(message.contains("job 9"));
            }
            other => panic!("want Corrupt, got {other}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let err = JournalReplay::load(Path::new("/nonexistent/rnuca.jl")).unwrap_err();
        assert!(matches!(err, JournalError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }
}
