//! The experiment runner: the paper's evaluation loop.
//!
//! [`DesignComparison::run_evaluation`] runs every workload of the evaluation
//! suite under every design (P, A, S, R, I) with warmed caches, producing the
//! data behind Figures 7-10 and 12. [`DesignComparison::run_cluster_sweep`]
//! sweeps the R-NUCA instruction-cluster size for Figure 11.
//!
//! Both are thin wrappers over the [`ExperimentEngine`]: every
//! `(workload, design, config-point)` combination becomes one job in a flat
//! list executed on a bounded worker pool, so ASR's six versions of one
//! workload run concurrently instead of serialising inside a per-workload
//! thread, and the assembled results are identical for every worker count.
//!
//! Jobs resolve their reference streams through a shared
//! [`TraceArena`]: the evaluation pre-populates the unique
//! `(workload, geometry, seed)` streams in parallel, then every job — all
//! five designs, and all six ASR variants of a workload — replays the one
//! memoized slab instead of regenerating the stream. Replay is bit-identical
//! to streaming generation (the golden-result tests pin this), so the arena
//! changes wall-clock time only.
//!
//! Warm-up is deduplicated the same way through a
//! [`SnapshotArena`]: each unique warmed state — one per
//! `(workload, warm-up class, seed, warm-up length)` — is built once and
//! serialized, and every job *forks* from the checkpoint instead of
//! re-driving the warm-up prefix. Forks are bit-identical to streamed
//! warm-up (the differential suite pins this), so snapshots, like the trace
//! arena, change wall-clock time only. The big winner is ASR best-of-six:
//! all six variants fork from one checkpoint, so the sweep warms once.
//!
//! Measurement itself is *fused* (see [`crate::fused`]): the designs
//! comparing one workload form a single fused group that steps every design
//! instance per shared 4096-reference batch, so a comparison consumes the
//! stream in one pass instead of one pass per design. The engine's unit of
//! work is therefore one fused group — per workload, not per design — and
//! each group still emits the bit-identical per-design [`MeasuredRun`]s the
//! independent jobs produced.

use crate::design::{AsrPolicy, LlcDesign};
use crate::engine::ExperimentEngine;
use crate::fused::run_fused_forked;
use crate::simulator::{CmpSimulator, MeasuredRun};
use crate::snapshot::SnapshotArena;
use rnuca_workloads::{TraceArena, TraceGenerator, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Parameters of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// References used to warm caches, TLBs, and page tables before measuring.
    pub warmup_refs: usize,
    /// References measured.
    pub measured_refs: usize,
    /// Trace seed (same seed = same reference stream for every design).
    pub seed: u64,
    /// If set, the ASR design reports the best of its six versions per
    /// workload (the paper's methodology); otherwise only the adaptive
    /// version runs.
    pub asr_best_of: bool,
}

impl ExperimentConfig {
    /// References each job drives in total — the slab length the trace
    /// arena materializes per unique stream.
    pub fn total_refs(&self) -> usize {
        self.warmup_refs + self.measured_refs
    }

    /// The configuration used by the figure harness: long enough runs for
    /// stable occupancy in every slice.
    pub fn full() -> Self {
        ExperimentConfig {
            warmup_refs: 600_000,
            measured_refs: 300_000,
            seed: 42,
            asr_best_of: true,
        }
    }

    /// A much smaller configuration for unit tests and Criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            warmup_refs: 30_000,
            measured_refs: 20_000,
            seed: 42,
            asr_best_of: false,
        }
    }

    /// A tiny configuration for CI smoke runs: just enough references to
    /// exercise every code path of the harness without meaningful occupancy.
    pub fn smoke() -> Self {
        ExperimentConfig {
            warmup_refs: 2_000,
            measured_refs: 1_500,
            seed: 42,
            asr_best_of: false,
        }
    }

    /// The preset this configuration's reference counts match: `"full"`,
    /// `"quick"`, `"smoke"`, or `"custom"` for anything else.
    ///
    /// The label keys results in the warehouse (the perf gate queries
    /// `config=full` rows only) and is inferred the same way when a
    /// report JSON — which records the reference counts but not the
    /// preset — is ingested back.
    pub fn label(&self) -> &'static str {
        let shape = (self.warmup_refs, self.measured_refs);
        if shape == (Self::full().warmup_refs, Self::full().measured_refs) {
            "full"
        } else if shape == (Self::quick().warmup_refs, Self::quick().measured_refs) {
            "quick"
        } else if shape == (Self::smoke().warmup_refs, Self::smoke().measured_refs) {
            "smoke"
        } else {
            "custom"
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::full()
    }
}

/// The result of one `(workload, design)` simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Design simulated.
    pub design: LlcDesign,
    /// Measured CPI detail and rates.
    pub run: MeasuredRun,
}

impl RunResult {
    /// Total CPI of the run.
    pub fn total_cpi(&self) -> f64 {
        self.run.total_cpi()
    }

    /// Speedup of this design relative to a baseline run of the same workload
    /// (CPI ratio; >1 means faster than the baseline).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.total_cpi() / self.total_cpi()
    }
}

/// All designs' results for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResults {
    /// Workload name.
    pub workload: String,
    /// Whether the paper buckets this workload as private-averse
    /// (the private design is the slower baseline) or shared-averse.
    pub private_averse: bool,
    /// One result per design, in P/A/S/R(/I) order.
    pub results: Vec<RunResult>,
}

impl WorkloadResults {
    /// The result for a given design letter ("P", "A", "S", "R", "I"), if present.
    pub fn by_letter(&self, letter: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.design.letter() == letter)
    }

    /// The private-design baseline result.
    ///
    /// # Panics
    ///
    /// Panics if the private design was not part of the run.
    pub fn private_baseline(&self) -> &RunResult {
        self.by_letter("P")
            .expect("evaluation always includes the private design")
    }

    /// Speedups of every design over the private baseline (Figure 12).
    pub fn speedups_over_private(&self) -> Vec<(LlcDesign, f64)> {
        let baseline = self.private_baseline();
        self.results
            .iter()
            .map(|r| (r.design, r.speedup_over(baseline)))
            .collect()
    }

    /// CPI of every design normalised to the private design's total CPI (Figures 7-10).
    pub fn normalized_total_cpi(&self) -> Vec<(LlcDesign, f64)> {
        let base = self.private_baseline().total_cpi();
        self.results
            .iter()
            .map(|r| (r.design, r.total_cpi() / base))
            .collect()
    }
}

/// The complete evaluation: every workload under every design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignComparison {
    /// Per-workload results in the paper's figure order.
    pub workloads: Vec<WorkloadResults>,
}

impl DesignComparison {
    /// Runs one workload under one design.
    ///
    /// The experiment seed drives both the trace generator and the
    /// simulator's internal RNG, so ASR's probabilistic replication varies
    /// with the seed instead of being pinned to a hardcoded one.
    pub fn run_single(spec: &WorkloadSpec, design: LlcDesign, cfg: &ExperimentConfig) -> RunResult {
        let mut gen = TraceGenerator::new(spec, cfg.seed);
        let mut sim = CmpSimulator::with_seed(design, spec, cfg.seed);
        sim.run_warmup(&mut gen, cfg.warmup_refs);
        let run = sim.run_measured(&mut gen, cfg.measured_refs);
        RunResult {
            workload: spec.name.clone(),
            design,
            run,
        }
    }

    /// [`Self::run_single`] replaying the workload's stream from `arena`
    /// instead of regenerating it. The result is bit-identical to the
    /// streaming path; the stream is generated at most once per unique
    /// `(workload, geometry, seed)` key no matter how many designs run it.
    pub fn run_single_with_arena(
        spec: &WorkloadSpec,
        design: LlcDesign,
        cfg: &ExperimentConfig,
        arena: &TraceArena,
    ) -> RunResult {
        let mut slice = arena.slice(spec, cfg.seed, cfg.total_refs());
        let mut sim = CmpSimulator::with_seed(design, spec, cfg.seed);
        sim.run_warmup(&mut slice, cfg.warmup_refs);
        let run = sim.run_measured(&mut slice, cfg.measured_refs);
        RunResult {
            workload: spec.name.clone(),
            design,
            run,
        }
    }

    /// [`Self::run_single_with_arena`] forking the warmed state from
    /// `snapshots` instead of re-driving the warm-up prefix: the checkpoint
    /// is built on first request (and shared by every design in its warm-up
    /// class), the fork restores it bit-for-bit, and the measured phase
    /// replays the arena stream from directly after the warm-up prefix. The
    /// result is bit-identical to the warm-then-measure paths.
    pub fn run_single_forked(
        spec: &WorkloadSpec,
        design: LlcDesign,
        cfg: &ExperimentConfig,
        traces: &TraceArena,
        snapshots: &SnapshotArena,
    ) -> RunResult {
        let snap = snapshots.snapshot(
            traces,
            design,
            spec,
            cfg.seed,
            cfg.warmup_refs,
            cfg.total_refs(),
        );
        let mut sim = snap.fork(design, spec);
        let mut slice = traces.slice(spec, cfg.seed, cfg.total_refs());
        slice.skip(cfg.warmup_refs);
        let run = sim.run_measured(&mut slice, cfg.measured_refs);
        RunResult {
            workload: spec.name.clone(),
            design,
            run,
        }
    }

    /// The ASR design variants one workload must run: the six versions when
    /// `asr_best_of` is set, the adaptive version alone otherwise.
    fn asr_variants(cfg: &ExperimentConfig) -> Vec<LlcDesign> {
        if cfg.asr_best_of {
            AsrPolicy::all_versions()
                .into_iter()
                .map(|policy| LlcDesign::Asr { policy })
                .collect()
        } else {
            vec![LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            }]
        }
    }

    /// Selects the paper's reported ASR result from the candidate runs: the
    /// version with the lowest total CPI (first wins ties, matching the
    /// version order of [`AsrPolicy::all_versions`]).
    fn best_asr(candidates: Vec<RunResult>) -> RunResult {
        candidates
            .into_iter()
            .min_by(|a, b| a.total_cpi().total_cmp(&b.total_cpi()))
            .expect("at least one ASR version exists")
    }

    /// Runs the ASR design, optionally taking the best of its six versions
    /// (the paper reports the highest-performing version per workload).
    pub fn run_asr(spec: &WorkloadSpec, cfg: &ExperimentConfig) -> RunResult {
        Self::run_asr_with(spec, cfg, &ExperimentEngine::new())
    }

    /// [`Self::run_asr`] on an explicit engine: the six versions are
    /// independent jobs, so best-of-six costs one version's wall-clock time.
    /// The versions share one arena slab — the workload's stream is
    /// generated once, not six times.
    pub fn run_asr_with(
        spec: &WorkloadSpec,
        cfg: &ExperimentConfig,
        engine: &ExperimentEngine,
    ) -> RunResult {
        Self::run_asr_with_arena(spec, cfg, engine, &TraceArena::new())
    }

    /// [`Self::run_asr_with`] resolving every variant through `arena`. All
    /// six ASR versions of one `(workload, config-point)` replay the same
    /// memoized slab and fork from one warmed checkpoint: the stream is
    /// materialized once and the warm-up runs once, no matter how many
    /// variants the sweep compares.
    pub fn run_asr_with_arena(
        spec: &WorkloadSpec,
        cfg: &ExperimentConfig,
        engine: &ExperimentEngine,
        arena: &TraceArena,
    ) -> RunResult {
        Self::run_asr_forked(spec, cfg, engine, arena, &SnapshotArena::new())
    }

    /// [`Self::run_asr_with_arena`] forking every variant from an explicit
    /// `snapshots` arena (exposed so callers can share checkpoints across
    /// experiments and inspect deduplication): the six ASR versions share
    /// one warm-up class, so the checkpoint is warmed exactly once — and the
    /// variants then run as one *fused group*, all six stepping each shared
    /// trace batch in a single pass over the stream. The engine parameter is
    /// kept for signature continuity; a fused best-of-six is one unit of
    /// work, so there are no per-variant jobs left to spread over workers.
    pub fn run_asr_forked(
        spec: &WorkloadSpec,
        cfg: &ExperimentConfig,
        _engine: &ExperimentEngine,
        traces: &TraceArena,
        snapshots: &SnapshotArena,
    ) -> RunResult {
        traces.populate(spec, cfg.seed, cfg.total_refs());
        let variants = Self::asr_variants(cfg);
        snapshots.populate(
            traces,
            variants[0],
            spec,
            cfg.seed,
            cfg.warmup_refs,
            cfg.total_refs(),
        );
        let runs = run_fused_forked(spec, &variants, cfg, traces, snapshots);
        Self::best_asr(
            variants
                .iter()
                .zip(runs)
                .map(|(&design, run)| RunResult {
                    workload: spec.name.clone(),
                    design,
                    run,
                })
                .collect(),
        )
    }

    /// Runs one workload under the P/A/S/R/I design set, serially (the
    /// reference path the flattened evaluation is tested against).
    pub fn run_workload(spec: &WorkloadSpec, cfg: &ExperimentConfig) -> WorkloadResults {
        let private = Self::run_single(spec, LlcDesign::Private, cfg);
        let asr = Self::run_asr_with(spec, cfg, &ExperimentEngine::with_workers(1));
        let shared = Self::run_single(spec, LlcDesign::Shared, cfg);
        let rnuca = Self::run_single(spec, LlcDesign::rnuca_default(), cfg);
        let ideal = Self::run_single(spec, LlcDesign::Ideal, cfg);
        Self::assemble_workload(spec, private, asr, shared, rnuca, ideal)
    }

    fn assemble_workload(
        spec: &WorkloadSpec,
        private: RunResult,
        asr: RunResult,
        shared: RunResult,
        rnuca: RunResult,
        ideal: RunResult,
    ) -> WorkloadResults {
        let private_averse = private.total_cpi() >= shared.total_cpi();
        WorkloadResults {
            workload: spec.name.clone(),
            private_averse,
            results: vec![private, asr, shared, rnuca, ideal],
        }
    }

    /// Runs the full evaluation suite on a default-sized engine.
    pub fn run_evaluation(cfg: &ExperimentConfig) -> DesignComparison {
        Self::run_evaluation_with(cfg, &ExperimentEngine::new())
    }

    /// [`Self::run_evaluation`] on an explicit engine.
    ///
    /// Every `(workload, design variant)` pair — including each ASR version —
    /// is one job, so the pool balances across the whole evaluation instead
    /// of per workload. The assembled comparison is identical to running
    /// [`Self::run_workload`] sequentially over the suite, for every worker
    /// count.
    pub fn run_evaluation_with(
        cfg: &ExperimentConfig,
        engine: &ExperimentEngine,
    ) -> DesignComparison {
        Self::run_evaluation_with_arena(cfg, engine, &TraceArena::new())
    }

    /// [`Self::run_evaluation_with`] resolving jobs through an explicit
    /// `arena` (exposed so callers can share streams across evaluations and
    /// inspect deduplication).
    ///
    /// The unique streams — one per workload at one seed — are pre-populated
    /// in parallel on the engine, then all design jobs (five designs plus
    /// the ASR variants, i.e. up to ten jobs per workload) replay them.
    pub fn run_evaluation_with_arena(
        cfg: &ExperimentConfig,
        engine: &ExperimentEngine,
        arena: &TraceArena,
    ) -> DesignComparison {
        Self::run_evaluation_forked(cfg, engine, arena, &SnapshotArena::new())
    }

    /// [`Self::run_evaluation_with_arena`] forking every design from an
    /// explicit `snapshots` arena. The unique checkpoints — one per
    /// `(workload, warm-up class)` at one seed, so five per workload with
    /// the six ASR variants collapsed onto one — are pre-warmed in parallel
    /// on the engine; each workload's designs then run as one fused group
    /// (fork every member + a single shared measured pass), so the engine's
    /// jobs are workloads and each workload's stream is walked once.
    pub fn run_evaluation_forked(
        cfg: &ExperimentConfig,
        engine: &ExperimentEngine,
        arena: &TraceArena,
        snapshots: &SnapshotArena,
    ) -> DesignComparison {
        let specs = WorkloadSpec::evaluation_suite();
        engine.run(&specs, |_, spec| {
            arena.populate(spec, cfg.seed, cfg.total_refs())
        });
        let warm_jobs: Vec<(usize, LlcDesign)> = specs
            .iter()
            .enumerate()
            .flat_map(|(i, _)| {
                [
                    (i, LlcDesign::Private),
                    (
                        i,
                        LlcDesign::Asr {
                            policy: AsrPolicy::Adaptive,
                        },
                    ),
                    (i, LlcDesign::Shared),
                    (i, LlcDesign::rnuca_default()),
                    (i, LlcDesign::Ideal),
                ]
            })
            .collect();
        engine.run(&warm_jobs, |_, &(i, design)| {
            snapshots.populate(
                arena,
                design,
                &specs[i],
                cfg.seed,
                cfg.warmup_refs,
                cfg.total_refs(),
            )
        });
        let asr_variants = Self::asr_variants(cfg);
        // Per workload one *fused group*: P, the ASR variants, then S, R, I
        // step every shared trace batch in a single pass over the stream.
        // The group's member order matches the assembly below.
        let group: Vec<LlcDesign> = std::iter::once(LlcDesign::Private)
            .chain(asr_variants.iter().copied())
            .chain([
                LlcDesign::Shared,
                LlcDesign::rnuca_default(),
                LlcDesign::Ideal,
            ])
            .collect();
        let fused = engine.run(&specs, |_, spec| {
            run_fused_forked(spec, &group, cfg, arena, snapshots)
        });

        let workloads = specs
            .iter()
            .zip(fused)
            .map(|(spec, runs)| {
                let mut results = group.iter().zip(runs).map(|(&design, run)| RunResult {
                    workload: spec.name.clone(),
                    design,
                    run,
                });
                let private = results.next().expect("private member ran");
                let asr = Self::best_asr(
                    (0..asr_variants.len())
                        .map(|_| results.next().expect("ASR member ran"))
                        .collect(),
                );
                let shared = results.next().expect("shared member ran");
                let rnuca = results.next().expect("R-NUCA member ran");
                let ideal = results.next().expect("ideal member ran");
                Self::assemble_workload(spec, private, asr, shared, rnuca, ideal)
            })
            .collect();
        DesignComparison { workloads }
    }

    /// Sweeps the R-NUCA instruction-cluster size over `sizes` for every
    /// workload (Figure 11). Returns, per workload, one result per size.
    pub fn run_cluster_sweep(
        cfg: &ExperimentConfig,
        sizes: &[usize],
    ) -> Vec<(String, Vec<(usize, MeasuredRun)>)> {
        Self::run_cluster_sweep_with(cfg, sizes, &ExperimentEngine::new())
    }

    /// [`Self::run_cluster_sweep`] on an explicit engine. Sizes exceeding a
    /// workload's core count are skipped. Every size of one workload replays
    /// the same arena slab — the cluster size never changes the reference
    /// stream — so each workload's sizes form one fused group: the sizes
    /// fork from their own checkpoints (cluster size changes where warm-up
    /// places instruction blocks, so sizes warm separately; the checkpoints
    /// are pre-warmed in parallel) and then step every shared batch in a
    /// single pass over the workload's stream.
    pub fn run_cluster_sweep_with(
        cfg: &ExperimentConfig,
        sizes: &[usize],
        engine: &ExperimentEngine,
    ) -> Vec<(String, Vec<(usize, MeasuredRun)>)> {
        let specs = WorkloadSpec::evaluation_suite();
        let arena = TraceArena::new();
        let snapshots = SnapshotArena::new();
        engine.run(&specs, |_, spec| {
            arena.populate(spec, cfg.seed, cfg.total_refs())
        });
        let jobs: Vec<(usize, usize)> = specs
            .iter()
            .enumerate()
            .flat_map(|(i, spec)| {
                sizes
                    .iter()
                    .copied()
                    .filter(|&s| s <= spec.num_cores())
                    .map(move |s| (i, s))
            })
            .collect();
        engine.run(&jobs, |_, &(i, size)| {
            snapshots.populate(
                &arena,
                LlcDesign::RNuca {
                    instr_cluster_size: size,
                },
                &specs[i],
                cfg.seed,
                cfg.warmup_refs,
                cfg.total_refs(),
            )
        });
        let groups: Vec<(usize, Vec<usize>)> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                (
                    i,
                    sizes
                        .iter()
                        .copied()
                        .filter(|&s| s <= spec.num_cores())
                        .collect(),
                )
            })
            .filter(|(_, sizes): &(usize, Vec<usize>)| !sizes.is_empty())
            .collect();
        let results = engine.run(&groups, |_, (i, group_sizes)| {
            let designs: Vec<LlcDesign> = group_sizes
                .iter()
                .map(|&size| LlcDesign::RNuca {
                    instr_cluster_size: size,
                })
                .collect();
            let runs = run_fused_forked(&specs[*i], &designs, cfg, &arena, &snapshots);
            group_sizes
                .iter()
                .zip(runs)
                .map(|(&size, run)| (size, run))
                .collect::<Vec<_>>()
        });

        let mut rows: Vec<(String, Vec<(usize, MeasuredRun)>)> = specs
            .iter()
            .map(|spec| (spec.name.clone(), Vec::new()))
            .collect();
        for ((i, _), group_rows) in groups.iter().zip(results) {
            rows[*i].1.extend(group_rows);
        }
        rows
    }

    /// The results for one workload by name.
    pub fn workload(&self, name: &str) -> Option<&WorkloadResults> {
        self.workloads.iter().find(|w| w.workload == name)
    }

    /// Geometric-mean speedup of a design over the private baseline across all workloads.
    pub fn mean_speedup_over_private(&self, letter: &str) -> f64 {
        let speedups: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| {
                let baseline = w.private_baseline();
                w.by_letter(letter).map(|r| r.speedup_over(baseline))
            })
            .collect();
        if speedups.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }

    /// Geometric-mean speedup of one design over another across all workloads.
    pub fn mean_speedup(&self, design_letter: &str, baseline_letter: &str) -> f64 {
        let speedups: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| {
                let baseline = w.by_letter(baseline_letter)?;
                w.by_letter(design_letter).map(|r| r.speedup_over(baseline))
            })
            .collect();
        if speedups.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_produces_named_result() {
        let spec = WorkloadSpec::em3d();
        let cfg = ExperimentConfig::quick();
        let r = DesignComparison::run_single(&spec, LlcDesign::Shared, &cfg);
        assert_eq!(r.workload, "em3d");
        assert_eq!(r.design.letter(), "S");
        assert!(r.total_cpi() > 0.0);
    }

    #[test]
    fn workload_results_expose_speedups_and_normalised_cpi() {
        let spec = WorkloadSpec::mix();
        let cfg = ExperimentConfig::quick();
        let w = DesignComparison::run_workload(&spec, &cfg);
        assert_eq!(w.results.len(), 5);
        let speedups = w.speedups_over_private();
        assert_eq!(speedups.len(), 5);
        // The private design's speedup over itself is exactly 1.
        let p = speedups.iter().find(|(d, _)| d.letter() == "P").unwrap();
        assert!((p.1 - 1.0).abs() < 1e-12);
        // Normalised CPI of the private design is exactly 1.
        let norm = w.normalized_total_cpi();
        let pn = norm.iter().find(|(d, _)| d.letter() == "P").unwrap();
        assert!((pn.1 - 1.0).abs() < 1e-12);
        // Ideal is at least as fast as everything else.
        let ideal = w.by_letter("I").unwrap().total_cpi();
        for r in &w.results {
            assert!(ideal <= r.total_cpi() + 1e-9);
        }
    }

    #[test]
    fn asr_best_of_picks_the_fastest_version() {
        let spec = WorkloadSpec::oltp_db2();
        let mut cfg = ExperimentConfig::quick();
        cfg.asr_best_of = true;
        cfg.warmup_refs = 10_000;
        cfg.measured_refs = 8_000;
        let best = DesignComparison::run_asr(&spec, &cfg);
        // The best-of result can be no slower than the adaptive version alone.
        let adaptive = DesignComparison::run_single(
            &spec,
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
            &cfg,
        );
        assert!(best.total_cpi() <= adaptive.total_cpi() + 1e-9);
    }

    #[test]
    fn run_single_with_arena_matches_the_streaming_path() {
        let cfg = ExperimentConfig::quick();
        let arena = TraceArena::new();
        for design in [
            LlcDesign::Private,
            LlcDesign::Shared,
            LlcDesign::rnuca_default(),
        ] {
            let spec = WorkloadSpec::oltp_db2();
            assert_eq!(
                DesignComparison::run_single_with_arena(&spec, design, &cfg, &arena),
                DesignComparison::run_single(&spec, design, &cfg),
            );
        }
        assert_eq!(arena.len(), 1, "one workload, one stream");
    }

    #[test]
    fn asr_best_of_six_shares_one_arena_slab() {
        // Satellite acceptance: all six ASR variants of one
        // (workload, config-point) resolve to the same slab — the stream is
        // generated exactly once, not six times.
        let spec = WorkloadSpec::oltp_db2();
        let mut cfg = ExperimentConfig::smoke();
        cfg.asr_best_of = true;
        let arena = TraceArena::new();
        let best = DesignComparison::run_asr_with_arena(
            &spec,
            &cfg,
            &ExperimentEngine::with_workers(4),
            &arena,
        );
        assert_eq!(best.design.letter(), "A");
        assert_eq!(arena.len(), 1, "six variants, one unique key");
        assert_eq!(arena.generations(), 1, "the stream was generated once");
    }

    #[test]
    fn full_evaluation_holds_one_arena_entry_per_unique_key() {
        // Satellite acceptance: after a full experiment (ASR best-of-six
        // included), the arena holds exactly one entry per unique
        // (workload, geometry, seed) key — the eight suite workloads — and
        // generated each exactly once despite ~10 design jobs per workload.
        let mut cfg = ExperimentConfig::smoke();
        cfg.asr_best_of = true;
        let arena = TraceArena::new();
        let comparison = DesignComparison::run_evaluation_with_arena(
            &cfg,
            &ExperimentEngine::with_workers(4),
            &arena,
        );
        assert_eq!(comparison.workloads.len(), 8);
        assert_eq!(arena.len(), WorkloadSpec::evaluation_suite().len());
        assert_eq!(arena.generations(), arena.len());
    }

    #[test]
    fn forked_run_matches_the_streaming_path_for_every_design() {
        // The snapshot subsystem's core contract at the experiment level:
        // fork + measure equals warm + measure, bit for bit, per design.
        let cfg = ExperimentConfig::quick();
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        for design in LlcDesign::speedup_set() {
            let spec = WorkloadSpec::oltp_db2();
            assert_eq!(
                DesignComparison::run_single_forked(&spec, design, &cfg, &traces, &snapshots),
                DesignComparison::run_single(&spec, design, &cfg),
                "{design} fork must match streamed warm-up"
            );
        }
        assert_eq!(traces.len(), 1, "one workload, one stream");
    }

    #[test]
    fn asr_best_of_six_forks_from_one_snapshot() {
        // Satellite acceptance: the six ASR variants share one warm-up
        // class, so the best-of-six sweep warms exactly once and every
        // variant forks from the same checkpoint.
        let spec = WorkloadSpec::oltp_db2();
        let mut cfg = ExperimentConfig::smoke();
        cfg.asr_best_of = true;
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let best = DesignComparison::run_asr_forked(
            &spec,
            &cfg,
            &ExperimentEngine::with_workers(4),
            &traces,
            &snapshots,
        );
        assert_eq!(best.design.letter(), "A");
        assert_eq!(snapshots.len(), 1, "six variants, one warm-up class");
        assert_eq!(snapshots.generations(), 1, "the warm-up ran exactly once");
        assert_eq!(traces.generations(), 1, "the stream was generated once");
    }

    #[test]
    fn full_evaluation_warms_one_checkpoint_per_class() {
        // After a full evaluation (ASR best-of-six included), the snapshot
        // arena holds exactly one checkpoint per (workload, warm-up class):
        // five per workload, the ~10 design jobs notwithstanding.
        let mut cfg = ExperimentConfig::smoke();
        cfg.asr_best_of = true;
        let traces = TraceArena::new();
        let snapshots = SnapshotArena::new();
        let comparison = DesignComparison::run_evaluation_forked(
            &cfg,
            &ExperimentEngine::with_workers(4),
            &traces,
            &snapshots,
        );
        assert_eq!(comparison.workloads.len(), 8);
        assert_eq!(snapshots.len(), 8 * 5, "five warm-up classes per workload");
        assert_eq!(snapshots.generations(), snapshots.len());
    }

    #[test]
    fn engine_evaluation_matches_the_per_workload_path() {
        // Acceptance criterion: the flattened job-level evaluation assembles
        // exactly the comparison the per-workload path produces on quick().
        let cfg = ExperimentConfig::quick();
        let engine = ExperimentEngine::with_workers(4);
        let flattened = DesignComparison::run_evaluation_with(&cfg, &engine);
        let per_workload: Vec<WorkloadResults> = WorkloadSpec::evaluation_suite()
            .iter()
            .map(|spec| DesignComparison::run_workload(spec, &cfg))
            .collect();
        assert_eq!(flattened.workloads, per_workload);
    }

    #[test]
    fn evaluation_is_identical_across_worker_counts() {
        let mut cfg = ExperimentConfig::quick();
        cfg.warmup_refs = 5_000;
        cfg.measured_refs = 4_000;
        cfg.asr_best_of = true; // exercise the flattened best-of-six jobs
        let serial =
            DesignComparison::run_evaluation_with(&cfg, &ExperimentEngine::with_workers(1));
        let pooled =
            DesignComparison::run_evaluation_with(&cfg, &ExperimentEngine::with_workers(8));
        assert_eq!(serial, pooled);
    }

    #[test]
    fn cluster_sweep_is_identical_across_worker_counts() {
        let mut cfg = ExperimentConfig::quick();
        cfg.warmup_refs = 3_000;
        cfg.measured_refs = 2_000;
        let serial = DesignComparison::run_cluster_sweep_with(
            &cfg,
            &[1, 4],
            &ExperimentEngine::with_workers(1),
        );
        let pooled = DesignComparison::run_cluster_sweep_with(
            &cfg,
            &[1, 4],
            &ExperimentEngine::with_workers(6),
        );
        assert_eq!(serial, pooled);
    }

    #[test]
    fn cluster_sweep_covers_requested_sizes() {
        let mut cfg = ExperimentConfig::quick();
        cfg.warmup_refs = 5_000;
        cfg.measured_refs = 5_000;
        let sweep = DesignComparison::run_cluster_sweep(&cfg, &[1, 4]);
        assert_eq!(sweep.len(), WorkloadSpec::evaluation_suite().len());
        for (name, rows) in &sweep {
            assert!(!name.is_empty());
            assert_eq!(rows.len(), 2, "both sizes apply to every workload");
            assert_eq!(rows[0].0, 1);
            assert_eq!(rows[1].0, 4);
        }
    }
}
