//! The experiment runner: the paper's evaluation loop.
//!
//! [`DesignComparison::run_evaluation`] runs every workload of the evaluation
//! suite under every design (P, A, S, R, I) with warmed caches, producing the
//! data behind Figures 7-10 and 12. [`DesignComparison::run_cluster_sweep`]
//! sweeps the R-NUCA instruction-cluster size for Figure 11. Workload/design
//! pairs are independent, so they are simulated on parallel threads.

use crate::design::{AsrPolicy, LlcDesign};
use crate::simulator::{CmpSimulator, MeasuredRun};
use rnuca_workloads::{TraceGenerator, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Parameters of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// References used to warm caches, TLBs, and page tables before measuring.
    pub warmup_refs: usize,
    /// References measured.
    pub measured_refs: usize,
    /// Trace seed (same seed = same reference stream for every design).
    pub seed: u64,
    /// If set, the ASR design reports the best of its six versions per
    /// workload (the paper's methodology); otherwise only the adaptive
    /// version runs.
    pub asr_best_of: bool,
}

impl ExperimentConfig {
    /// The configuration used by the figure harness: long enough runs for
    /// stable occupancy in every slice.
    pub fn full() -> Self {
        ExperimentConfig { warmup_refs: 600_000, measured_refs: 300_000, seed: 42, asr_best_of: true }
    }

    /// A much smaller configuration for unit tests and Criterion benches.
    pub fn quick() -> Self {
        ExperimentConfig { warmup_refs: 30_000, measured_refs: 20_000, seed: 42, asr_best_of: false }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::full()
    }
}

/// The result of one `(workload, design)` simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Design simulated.
    pub design: LlcDesign,
    /// Measured CPI detail and rates.
    pub run: MeasuredRun,
}

impl RunResult {
    /// Total CPI of the run.
    pub fn total_cpi(&self) -> f64 {
        self.run.total_cpi()
    }

    /// Speedup of this design relative to a baseline run of the same workload
    /// (CPI ratio; >1 means faster than the baseline).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.total_cpi() / self.total_cpi()
    }
}

/// All designs' results for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResults {
    /// Workload name.
    pub workload: String,
    /// Whether the paper buckets this workload as private-averse
    /// (the private design is the slower baseline) or shared-averse.
    pub private_averse: bool,
    /// One result per design, in P/A/S/R(/I) order.
    pub results: Vec<RunResult>,
}

impl WorkloadResults {
    /// The result for a given design letter ("P", "A", "S", "R", "I"), if present.
    pub fn by_letter(&self, letter: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.design.letter() == letter)
    }

    /// The private-design baseline result.
    ///
    /// # Panics
    ///
    /// Panics if the private design was not part of the run.
    pub fn private_baseline(&self) -> &RunResult {
        self.by_letter("P").expect("evaluation always includes the private design")
    }

    /// Speedups of every design over the private baseline (Figure 12).
    pub fn speedups_over_private(&self) -> Vec<(LlcDesign, f64)> {
        let baseline = self.private_baseline();
        self.results.iter().map(|r| (r.design, r.speedup_over(baseline))).collect()
    }

    /// CPI of every design normalised to the private design's total CPI (Figures 7-10).
    pub fn normalized_total_cpi(&self) -> Vec<(LlcDesign, f64)> {
        let base = self.private_baseline().total_cpi();
        self.results.iter().map(|r| (r.design, r.total_cpi() / base)).collect()
    }
}

/// The complete evaluation: every workload under every design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignComparison {
    /// Per-workload results in the paper's figure order.
    pub workloads: Vec<WorkloadResults>,
}

impl DesignComparison {
    /// Runs one workload under one design.
    pub fn run_single(spec: &WorkloadSpec, design: LlcDesign, cfg: &ExperimentConfig) -> RunResult {
        let mut gen = TraceGenerator::new(spec, cfg.seed);
        let mut sim = CmpSimulator::new(design, spec);
        sim.run_warmup(&mut gen, cfg.warmup_refs);
        let run = sim.run_measured(&mut gen, cfg.measured_refs);
        RunResult { workload: spec.name.clone(), design, run }
    }

    /// Runs the ASR design, optionally taking the best of its six versions
    /// (the paper reports the highest-performing version per workload).
    pub fn run_asr(spec: &WorkloadSpec, cfg: &ExperimentConfig) -> RunResult {
        if !cfg.asr_best_of {
            return Self::run_single(spec, LlcDesign::Asr { policy: AsrPolicy::Adaptive }, cfg);
        }
        AsrPolicy::all_versions()
            .into_iter()
            .map(|policy| Self::run_single(spec, LlcDesign::Asr { policy }, cfg))
            .min_by(|a, b| a.total_cpi().total_cmp(&b.total_cpi()))
            .expect("at least one ASR version exists")
    }

    /// Runs one workload under the P/A/S/R/I design set.
    pub fn run_workload(spec: &WorkloadSpec, cfg: &ExperimentConfig) -> WorkloadResults {
        let private = Self::run_single(spec, LlcDesign::Private, cfg);
        let asr = Self::run_asr(spec, cfg);
        let shared = Self::run_single(spec, LlcDesign::Shared, cfg);
        let rnuca = Self::run_single(spec, LlcDesign::rnuca_default(), cfg);
        let ideal = Self::run_single(spec, LlcDesign::Ideal, cfg);
        let private_averse = private.total_cpi() >= shared.total_cpi();
        WorkloadResults {
            workload: spec.name.clone(),
            private_averse,
            results: vec![private, asr, shared, rnuca, ideal],
        }
    }

    /// Runs the full evaluation suite, one workload per thread.
    pub fn run_evaluation(cfg: &ExperimentConfig) -> DesignComparison {
        let specs = WorkloadSpec::evaluation_suite();
        let workloads = std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(move || Self::run_workload(spec, cfg)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("simulation thread panicked"))
                .collect()
        });
        DesignComparison { workloads }
    }

    /// Sweeps the R-NUCA instruction-cluster size over `sizes` for every
    /// workload (Figure 11). Returns, per workload, one result per size.
    pub fn run_cluster_sweep(cfg: &ExperimentConfig, sizes: &[usize]) -> Vec<(String, Vec<(usize, MeasuredRun)>)> {
        let specs = WorkloadSpec::evaluation_suite();
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    scope.spawn(move || {
                        let max = spec.num_cores();
                        let rows: Vec<(usize, MeasuredRun)> = sizes
                            .iter()
                            .copied()
                            .filter(|&s| s <= max)
                            .map(|s| {
                                let r = Self::run_single(
                                    spec,
                                    LlcDesign::RNuca { instr_cluster_size: s },
                                    cfg,
                                );
                                (s, r.run)
                            })
                            .collect();
                        (spec.name.clone(), rows)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("simulation thread panicked"))
                .collect()
        })
    }

    /// The results for one workload by name.
    pub fn workload(&self, name: &str) -> Option<&WorkloadResults> {
        self.workloads.iter().find(|w| w.workload == name)
    }

    /// Geometric-mean speedup of a design over the private baseline across all workloads.
    pub fn mean_speedup_over_private(&self, letter: &str) -> f64 {
        let speedups: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| {
                let baseline = w.private_baseline();
                w.by_letter(letter).map(|r| r.speedup_over(baseline))
            })
            .collect();
        if speedups.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }

    /// Geometric-mean speedup of one design over another across all workloads.
    pub fn mean_speedup(&self, design_letter: &str, baseline_letter: &str) -> f64 {
        let speedups: Vec<f64> = self
            .workloads
            .iter()
            .filter_map(|w| {
                let baseline = w.by_letter(baseline_letter)?;
                w.by_letter(design_letter).map(|r| r.speedup_over(baseline))
            })
            .collect();
        if speedups.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = speedups.iter().map(|s| s.ln()).sum();
        (log_sum / speedups.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_single_produces_named_result() {
        let spec = WorkloadSpec::em3d();
        let cfg = ExperimentConfig::quick();
        let r = DesignComparison::run_single(&spec, LlcDesign::Shared, &cfg);
        assert_eq!(r.workload, "em3d");
        assert_eq!(r.design.letter(), "S");
        assert!(r.total_cpi() > 0.0);
    }

    #[test]
    fn workload_results_expose_speedups_and_normalised_cpi() {
        let spec = WorkloadSpec::mix();
        let cfg = ExperimentConfig::quick();
        let w = DesignComparison::run_workload(&spec, &cfg);
        assert_eq!(w.results.len(), 5);
        let speedups = w.speedups_over_private();
        assert_eq!(speedups.len(), 5);
        // The private design's speedup over itself is exactly 1.
        let p = speedups.iter().find(|(d, _)| d.letter() == "P").unwrap();
        assert!((p.1 - 1.0).abs() < 1e-12);
        // Normalised CPI of the private design is exactly 1.
        let norm = w.normalized_total_cpi();
        let pn = norm.iter().find(|(d, _)| d.letter() == "P").unwrap();
        assert!((pn.1 - 1.0).abs() < 1e-12);
        // Ideal is at least as fast as everything else.
        let ideal = w.by_letter("I").unwrap().total_cpi();
        for r in &w.results {
            assert!(ideal <= r.total_cpi() + 1e-9);
        }
    }

    #[test]
    fn asr_best_of_picks_the_fastest_version() {
        let spec = WorkloadSpec::oltp_db2();
        let mut cfg = ExperimentConfig::quick();
        cfg.asr_best_of = true;
        cfg.warmup_refs = 10_000;
        cfg.measured_refs = 8_000;
        let best = DesignComparison::run_asr(&spec, &cfg);
        // The best-of result can be no slower than the adaptive version alone.
        let adaptive =
            DesignComparison::run_single(&spec, LlcDesign::Asr { policy: AsrPolicy::Adaptive }, &cfg);
        assert!(best.total_cpi() <= adaptive.total_cpi() + 1e-9);
    }

    #[test]
    fn cluster_sweep_covers_requested_sizes() {
        let mut cfg = ExperimentConfig::quick();
        cfg.warmup_refs = 5_000;
        cfg.measured_refs = 5_000;
        let sweep = DesignComparison::run_cluster_sweep(&cfg, &[1, 4]);
        assert_eq!(sweep.len(), WorkloadSpec::evaluation_suite().len());
        for (name, rows) in &sweep {
            assert!(!name.is_empty());
            assert_eq!(rows.len(), 2, "both sizes apply to every workload");
            assert_eq!(rows[0].0, 1);
            assert_eq!(rows[1].0, 4);
        }
    }
}
