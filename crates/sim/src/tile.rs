//! The per-tile cache state managed by the simulator.
//!
//! A tile couples a core with its L2 slice (plus a small victim buffer). The
//! simulator stores per-block metadata in the slice — the block's access
//! class and a dirty bit — and the tile exposes the small set of operations
//! the design policies need, including the single-probe
//! [`Tile::access`]/[`Tile::fill_at`] pair the hot loop uses.

use rnuca_cache::{CacheArray, CacheStats, EntryRef, ProbeEntry, SetRef, VictimCache};
use rnuca_types::access::AccessClass;
use rnuca_types::addr::{BlockAddr, PageAddr};
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::TileId;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};

/// Outcome of a single-probe [`Tile::access`]: a located resident block, or
/// the slice set a subsequent [`Tile::fill_at`] should fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileAccess {
    /// The block is resident (in the slice, or re-promoted from the victim
    /// buffer); the handle addresses its metadata.
    Hit(EntryRef),
    /// The block is absent from the tile; the handle locates the fill set.
    Miss(SetRef),
}

impl TileAccess {
    /// Returns `true` for a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, TileAccess::Hit(_))
    }
}

/// Metadata stored with every block resident in an L2 slice.
///
/// Deliberately two bytes: the metadata slab is touched on every hit and
/// fill, so its footprint is hot-loop state. (R-NUCA page shoot-downs walk
/// the page's block addresses, so blocks do not need to remember their
/// page.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// Ground-truth access class of the block (used only for statistics).
    pub class: AccessClass,
    /// Whether the resident copy is dirty with respect to memory.
    pub dirty: bool,
}

/// One tile: an L2 slice plus its victim buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    id: TileId,
    slice: CacheArray<BlockMeta>,
    victims: VictimCache<BlockMeta>,
}

impl Tile {
    /// Builds the tile's cache structures from the system configuration.
    pub fn new(id: TileId, config: &SystemConfig) -> Self {
        Tile {
            id,
            slice: CacheArray::new(config.l2_slice.geometry),
            victims: VictimCache::new(config.l2_slice.victim_entries),
        }
    }

    /// The tile's identifier.
    pub fn id(&self) -> TileId {
        self.id
    }

    /// Hints the CPU to pull the slice set a probe of `block` will scan into
    /// cache (see [`CacheArray::prefetch`]). Performance hint only.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.slice.prefetch(block);
    }

    /// The block a fill-after-miss would push out of the tile entirely — the
    /// victim buffer's oldest entry, which is what [`Tile::fill_at`] reports
    /// and the directory is told about. `None` while the buffer still has
    /// room (then nothing departs). Read-only; prefetch hints use it to warm
    /// the departing block's directory entry ahead of the eviction.
    pub fn peek_departing(&self) -> Option<BlockAddr> {
        self.victims.peek_oldest()
    }

    /// Looks up a block in the slice (checking the victim buffer on a miss and
    /// re-promoting on a victim hit). Returns `true` on a hit.
    pub fn probe(&mut self, block: BlockAddr) -> bool {
        self.access(block).is_hit()
    }

    /// Single-probe lookup: like [`Tile::probe`], but the returned handle
    /// lets the caller update a hit's metadata or fill the missed set via
    /// [`Tile::fill_at`] without a second tag search. A victim-buffer hit is
    /// re-promoted into the slice (anything displaced goes back to the
    /// buffer) and reported as a hit.
    pub fn access(&mut self, block: BlockAddr) -> TileAccess {
        match self.slice.probe_entry(block) {
            ProbeEntry::Hit(entry) => TileAccess::Hit(entry),
            ProbeEntry::Miss(slot) => match self.victims.recall(block) {
                Some(meta) => {
                    let (entry, evicted) = self.slice.fill_at(slot, block, meta);
                    if let Some(ev) = evicted {
                        self.victims.insert(ev.block, ev.meta);
                    }
                    TileAccess::Hit(entry)
                }
                None => TileAccess::Miss(slot),
            },
        }
    }

    /// The metadata of a resident block located by [`Tile::access`].
    pub fn meta_mut(&mut self, entry: EntryRef) -> &mut BlockMeta {
        self.slice.entry_meta_mut(entry)
    }

    /// Fills a block into the slice set a preceding [`Tile::access`] miss
    /// searched, skipping the re-scan [`Tile::fill`] would perform. Returns
    /// the block that left the tile entirely (fell out of both the slice and
    /// the victim buffer), which is what the directory needs to know about.
    pub fn fill_at(
        &mut self,
        slot: SetRef,
        block: BlockAddr,
        meta: BlockMeta,
    ) -> Option<(BlockAddr, BlockMeta)> {
        let (_, evicted) = self.slice.fill_at(slot, block, meta);
        let evicted = evicted?;
        self.victims.insert(evicted.block, evicted.meta)
    }

    /// Checks residency without disturbing replacement state.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.slice.contains(block) || self.victims.contains(block)
    }

    /// Marks a resident block dirty; returns `true` if the block was resident.
    pub fn mark_dirty(&mut self, block: BlockAddr) -> bool {
        match self.slice.probe_mut(block) {
            Some(meta) => {
                meta.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Fills a block into the slice, returning the displaced block (if any)
    /// after it has been parked in the victim buffer and finally dropped.
    ///
    /// The returned eviction is the block that left the tile entirely (fell
    /// out of both the slice and the victim buffer), which is what the
    /// directory needs to know about.
    pub fn fill(&mut self, block: BlockAddr, meta: BlockMeta) -> Option<(BlockAddr, BlockMeta)> {
        let evicted = self.slice.insert(block, meta)?;
        self.victims.insert(evicted.block, evicted.meta)
    }

    /// Invalidates a block everywhere in the tile, returning its metadata if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<BlockMeta> {
        let from_slice = self.slice.invalidate(block);
        let from_victims = self.victims.invalidate(block);
        from_slice.or(from_victims)
    }

    /// Invalidates every block belonging to `page` (an R-NUCA shoot-down),
    /// returning how many blocks were dropped from the slice.
    ///
    /// The shoot-down walks the page's block addresses — a page holds a
    /// fixed, small number of blocks — instead of scanning every set of the
    /// slice for matching metadata, keeping re-classification cost
    /// proportional to the page size rather than the slice size. The victim
    /// buffer is deliberately left alone, mirroring the metadata-scan
    /// behaviour this replaces.
    pub fn invalidate_page(&mut self, page: PageAddr, page_bytes: usize) -> usize {
        let block_bytes = self.slice.geometry().block_bytes;
        page.blocks(block_bytes, page_bytes)
            .filter(|&block| self.slice.invalidate(block).is_some())
            .count()
    }

    /// Number of blocks resident in the slice (excluding the victim buffer).
    pub fn resident_blocks(&self) -> usize {
        self.slice.len()
    }

    /// Statistics of the slice array.
    pub fn slice_stats(&self) -> &CacheStats {
        self.slice.stats()
    }

    /// Number of resident blocks of each class `(instructions, private, shared)`.
    pub fn class_occupancy(&self) -> (usize, usize, usize) {
        let mut instr = 0;
        let mut private = 0;
        let mut shared = 0;
        for (_, meta) in self.slice.iter() {
            match meta.class {
                AccessClass::Instruction => instr += 1,
                AccessClass::PrivateData => private += 1,
                AccessClass::SharedData => shared += 1,
            }
        }
        (instr, private, shared)
    }
}

impl Snap for BlockMeta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.class.encode(out);
        self.dirty.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        BlockMeta {
            class: r.get(),
            dirty: r.get(),
        }
    }
}

impl Snap for Tile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.slice.encode(out);
        self.victims.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        Tile {
            id: r.get(),
            slice: r.get(),
            victims: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(class: AccessClass) -> BlockMeta {
        BlockMeta {
            class,
            dirty: false,
        }
    }

    fn tile() -> Tile {
        Tile::new(TileId::new(0), &SystemConfig::server_16())
    }

    fn b(n: u64) -> BlockAddr {
        BlockAddr::from_block_number(n)
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut t = tile();
        assert!(!t.probe(b(1)));
        assert!(t.fill(b(1), meta(AccessClass::PrivateData)).is_none());
        assert!(t.probe(b(1)));
        assert!(t.contains(b(1)));
        assert_eq!(t.resident_blocks(), 1);
    }

    #[test]
    fn victim_buffer_catches_recent_evictions() {
        let mut t = tile();
        // The server L2 slice has 1024 sets x 16 ways; blocks that share set 0
        // are multiples of 1024. Fill 17 of them to force one eviction.
        for i in 0..17u64 {
            t.fill(b(i * 1024), meta(AccessClass::PrivateData));
        }
        // The LRU block (block 0) fell out of the slice but sits in the victim buffer.
        assert_eq!(t.resident_blocks(), 16);
        assert!(
            t.contains(b(0)),
            "victim buffer should still hold the evicted block"
        );
        assert!(t.probe(b(0)), "probing re-promotes from the victim buffer");
    }

    #[test]
    fn mark_dirty_only_affects_resident_blocks() {
        let mut t = tile();
        assert!(!t.mark_dirty(b(9)));
        t.fill(b(9), meta(AccessClass::SharedData));
        assert!(t.mark_dirty(b(9)));
    }

    #[test]
    fn invalidate_page_drops_only_that_page() {
        let mut t = tile();
        // 8 KB pages of 64 B blocks: page 7 spans blocks 896..1024.
        let page_bytes = 8192;
        let first = 7 * (page_bytes as u64 / 64);
        t.fill(b(first), meta(AccessClass::PrivateData));
        t.fill(b(first + 1), meta(AccessClass::PrivateData));
        let other = 8 * (page_bytes as u64 / 64);
        t.fill(b(other), meta(AccessClass::PrivateData));
        assert_eq!(
            t.invalidate_page(PageAddr::from_page_number(7), page_bytes),
            2
        );
        assert!(!t.contains(b(first)));
        assert!(t.contains(b(other)));
        // A second shoot-down finds nothing left.
        assert_eq!(
            t.invalidate_page(PageAddr::from_page_number(7), page_bytes),
            0
        );
    }

    #[test]
    fn invalidate_single_block() {
        let mut t = tile();
        t.fill(b(5), meta(AccessClass::Instruction));
        assert!(t.invalidate(b(5)).is_some());
        assert!(t.invalidate(b(5)).is_none());
    }

    #[test]
    fn class_occupancy_counts() {
        let mut t = tile();
        t.fill(b(1), meta(AccessClass::Instruction));
        t.fill(b(2), meta(AccessClass::PrivateData));
        t.fill(b(3), meta(AccessClass::PrivateData));
        t.fill(b(4), meta(AccessClass::SharedData));
        assert_eq!(t.class_occupancy(), (1, 2, 1));
    }
}
