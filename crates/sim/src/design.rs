//! The LLC designs under comparison (Section 5.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// ASR's policy for allocating clean shared blocks in the local L2 slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AsrPolicy {
    /// Allocate locally with a fixed probability (the paper's five static versions).
    Static(f64),
    /// Adapt the allocation probability at run time based on whether local
    /// replication has been paying off (the paper's adaptive version).
    Adaptive,
}

impl AsrPolicy {
    /// The five static probabilities evaluated in the paper plus the adaptive version.
    pub fn all_versions() -> Vec<AsrPolicy> {
        vec![
            AsrPolicy::Static(0.0),
            AsrPolicy::Static(0.25),
            AsrPolicy::Static(0.5),
            AsrPolicy::Static(0.75),
            AsrPolicy::Static(1.0),
            AsrPolicy::Adaptive,
        ]
    }
}

impl fmt::Display for AsrPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsrPolicy::Static(p) => write!(f, "static p={p}"),
            AsrPolicy::Adaptive => f.write_str("adaptive"),
        }
    }
}

/// One of the last-level-cache organisations compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LlcDesign {
    /// Each tile's slice is a private L2; a full-map directory keeps slices coherent.
    Private,
    /// Private organisation plus ASR's selective replication of clean shared blocks.
    Asr {
        /// The allocation policy in use.
        policy: AsrPolicy,
    },
    /// Address-interleaved shared L2: one fixed location per block.
    Shared,
    /// Reactive NUCA with the given instruction-cluster size (4 in the paper's configuration).
    RNuca {
        /// Size of the fixed-center instruction cluster (power of two).
        instr_cluster_size: usize,
    },
    /// Idealised design: aggregate capacity at local-slice latency, no network.
    Ideal,
}

impl LlcDesign {
    /// The paper's default R-NUCA configuration (size-4 instruction clusters).
    pub fn rnuca_default() -> Self {
        LlcDesign::RNuca {
            instr_cluster_size: 4,
        }
    }

    /// The four real designs of Figure 7 (P, A, S, R) in the paper's order.
    pub fn evaluation_set() -> Vec<LlcDesign> {
        vec![
            LlcDesign::Private,
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
            LlcDesign::Shared,
            LlcDesign::rnuca_default(),
        ]
    }

    /// The designs of Figure 12 (P, A, S, R plus the Ideal bound).
    pub fn speedup_set() -> Vec<LlcDesign> {
        let mut v = Self::evaluation_set();
        v.push(LlcDesign::Ideal);
        v
    }

    /// Single-letter label used in the paper's figures (P, A, S, R, I).
    pub fn letter(&self) -> &'static str {
        match self {
            LlcDesign::Private => "P",
            LlcDesign::Asr { .. } => "A",
            LlcDesign::Shared => "S",
            LlcDesign::RNuca { .. } => "R",
            LlcDesign::Ideal => "I",
        }
    }

    /// Returns `true` for the designs that need an L2-level coherence directory.
    pub fn needs_l2_coherence(&self) -> bool {
        matches!(self, LlcDesign::Private | LlcDesign::Asr { .. })
    }
}

impl fmt::Display for LlcDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlcDesign::Private => f.write_str("private"),
            LlcDesign::Asr { policy } => write!(f, "ASR ({policy})"),
            LlcDesign::Shared => f.write_str("shared"),
            LlcDesign::RNuca { instr_cluster_size } => {
                write!(f, "R-NUCA (size-{instr_cluster_size} instruction clusters)")
            }
            LlcDesign::Ideal => f.write_str("ideal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_is_pasr_order() {
        let set = LlcDesign::evaluation_set();
        let letters: Vec<_> = set.iter().map(LlcDesign::letter).collect();
        assert_eq!(letters, vec!["P", "A", "S", "R"]);
        let speedup: Vec<_> = LlcDesign::speedup_set()
            .iter()
            .map(LlcDesign::letter)
            .collect();
        assert_eq!(speedup, vec!["P", "A", "S", "R", "I"]);
    }

    #[test]
    fn coherence_requirements() {
        assert!(LlcDesign::Private.needs_l2_coherence());
        assert!(LlcDesign::Asr {
            policy: AsrPolicy::Static(0.5)
        }
        .needs_l2_coherence());
        assert!(!LlcDesign::Shared.needs_l2_coherence());
        assert!(!LlcDesign::rnuca_default().needs_l2_coherence());
        assert!(!LlcDesign::Ideal.needs_l2_coherence());
    }

    #[test]
    fn asr_versions_cover_the_paper() {
        let versions = AsrPolicy::all_versions();
        assert_eq!(versions.len(), 6);
        assert!(versions.contains(&AsrPolicy::Static(0.0)));
        assert!(versions.contains(&AsrPolicy::Adaptive));
    }

    #[test]
    fn display_strings() {
        assert_eq!(LlcDesign::Private.to_string(), "private");
        assert_eq!(
            LlcDesign::rnuca_default().to_string(),
            "R-NUCA (size-4 instruction clusters)"
        );
        assert_eq!(AsrPolicy::Static(0.25).to_string(), "static p=0.25");
        assert!(LlcDesign::Asr {
            policy: AsrPolicy::Adaptive
        }
        .to_string()
        .contains("adaptive"));
    }
}
