//! CPI accounting: the breakdowns plotted in Figures 7-11.
//!
//! The paper reports cycles-per-instruction split into *busy* (useful
//! computation), *L1-to-L1* transfers, *L2* hits (loads and instruction
//! fetches), *off-chip* accesses, *other* (store latency, front-end stalls),
//! and R-NUCA's *re-classification* overhead. Figures 8-10 further split the
//! L2 component by access class and by whether a coherence indirection was
//! involved. [`DetailedCpi`] carries all of those at once.

use rnuca_types::access::AccessClass;
use rnuca_types::{Snap, SnapReader};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The top-level CPI components of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpiComponent {
    /// Useful computation.
    Busy,
    /// Dirty data forwarded from a remote L1.
    L1ToL1,
    /// L2 loads and instruction fetches serviced on chip.
    L2,
    /// Requests serviced by main memory.
    OffChip,
    /// Store latency and other stalls.
    Other,
    /// R-NUCA page re-classification overhead.
    Reclassification,
}

impl CpiComponent {
    /// All components in the order the paper's stacked bars use.
    pub const ALL: [CpiComponent; 6] = [
        CpiComponent::Busy,
        CpiComponent::L1ToL1,
        CpiComponent::L2,
        CpiComponent::OffChip,
        CpiComponent::Other,
        CpiComponent::Reclassification,
    ];

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CpiComponent::Busy => "Busy",
            CpiComponent::L1ToL1 => "L1-to-L1",
            CpiComponent::L2 => "L2",
            CpiComponent::OffChip => "Off-chip",
            CpiComponent::Other => "Other",
            CpiComponent::Reclassification => "Re-class",
        }
    }
}

impl fmt::Display for CpiComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A CPI breakdown over the six top-level components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CpiBreakdown {
    /// Useful computation.
    pub busy: f64,
    /// Dirty data forwarded from a remote L1.
    pub l1_to_l1: f64,
    /// On-chip L2 loads and instruction fetches.
    pub l2: f64,
    /// Off-chip accesses.
    pub off_chip: f64,
    /// Store latency and other stalls.
    pub other: f64,
    /// R-NUCA page re-classification overhead.
    pub reclassification: f64,
}

impl CpiBreakdown {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.busy + self.l1_to_l1 + self.l2 + self.off_chip + self.other + self.reclassification
    }

    /// The value of one component.
    pub fn component(&self, c: CpiComponent) -> f64 {
        match c {
            CpiComponent::Busy => self.busy,
            CpiComponent::L1ToL1 => self.l1_to_l1,
            CpiComponent::L2 => self.l2,
            CpiComponent::OffChip => self.off_chip,
            CpiComponent::Other => self.other,
            CpiComponent::Reclassification => self.reclassification,
        }
    }

    /// Adds a value to one component.
    pub fn add(&mut self, c: CpiComponent, value: f64) {
        match c {
            CpiComponent::Busy => self.busy += value,
            CpiComponent::L1ToL1 => self.l1_to_l1 += value,
            CpiComponent::L2 => self.l2 += value,
            CpiComponent::OffChip => self.off_chip += value,
            CpiComponent::Other => self.other += value,
            CpiComponent::Reclassification => self.reclassification += value,
        }
    }

    /// Returns this breakdown with every component divided by `denominator`.
    pub fn scaled(&self, denominator: f64) -> CpiBreakdown {
        assert!(
            denominator > 0.0,
            "cannot normalise by a non-positive denominator"
        );
        CpiBreakdown {
            busy: self.busy / denominator,
            l1_to_l1: self.l1_to_l1 / denominator,
            l2: self.l2 / denominator,
            off_chip: self.off_chip / denominator,
            other: self.other / denominator,
            reclassification: self.reclassification / denominator,
        }
    }
}

/// The full CPI detail needed to regenerate Figures 7-11.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DetailedCpi {
    /// The top-level breakdown (Figure 7).
    pub breakdown: CpiBreakdown,
    /// L2 CPI contributed by private-data loads (Figure 9).
    pub l2_private_data: f64,
    /// L2 CPI contributed by instruction fetches (Figure 10).
    pub l2_instructions: f64,
    /// L2 CPI contributed by shared-data loads serviced without a coherence
    /// indirection (Figure 8, "L2 shared load").
    pub l2_shared_load: f64,
    /// L2 CPI contributed by shared-data loads that needed a coherence
    /// indirection to a remote slice (Figure 8, "L2 shared load coherence";
    /// only the private and ASR designs have this component).
    pub l2_shared_coherence: f64,
    /// Off-chip CPI contributed by instruction fetches (Figure 11's off-chip component).
    pub off_chip_instructions: f64,
}

impl DetailedCpi {
    /// Total CPI.
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// The Figure 8 quantity: CPI of L1-to-L1 transfers plus all shared-data L2 loads.
    pub fn shared_access_cpi(&self) -> f64 {
        self.breakdown.l1_to_l1 + self.l2_shared_load + self.l2_shared_coherence
    }

    /// Adds L2 CPI to both the top-level breakdown and the per-class detail.
    pub fn add_l2(&mut self, class: AccessClass, coherence_indirection: bool, cpi: f64) {
        self.breakdown.add(CpiComponent::L2, cpi);
        match class {
            AccessClass::PrivateData => self.l2_private_data += cpi,
            AccessClass::Instruction => self.l2_instructions += cpi,
            AccessClass::SharedData => {
                if coherence_indirection {
                    self.l2_shared_coherence += cpi;
                } else {
                    self.l2_shared_load += cpi;
                }
            }
        }
    }

    /// Adds off-chip CPI, tracking the instruction share separately.
    pub fn add_off_chip(&mut self, class: AccessClass, cpi: f64) {
        self.breakdown.add(CpiComponent::OffChip, cpi);
        if class == AccessClass::Instruction {
            self.off_chip_instructions += cpi;
        }
    }

    /// Returns this detail with every field divided by `denominator`
    /// (used to convert accumulated cycles into per-instruction values).
    pub fn scaled(&self, denominator: f64) -> DetailedCpi {
        assert!(
            denominator > 0.0,
            "cannot normalise by a non-positive denominator"
        );
        DetailedCpi {
            breakdown: self.breakdown.scaled(denominator),
            l2_private_data: self.l2_private_data / denominator,
            l2_instructions: self.l2_instructions / denominator,
            l2_shared_load: self.l2_shared_load / denominator,
            l2_shared_coherence: self.l2_shared_coherence / denominator,
            off_chip_instructions: self.off_chip_instructions / denominator,
        }
    }
}

impl Snap for CpiBreakdown {
    fn encode(&self, out: &mut Vec<u8>) {
        self.busy.encode(out);
        self.l1_to_l1.encode(out);
        self.l2.encode(out);
        self.off_chip.encode(out);
        self.other.encode(out);
        self.reclassification.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        CpiBreakdown {
            busy: r.get(),
            l1_to_l1: r.get(),
            l2: r.get(),
            off_chip: r.get(),
            other: r.get(),
            reclassification: r.get(),
        }
    }
}

impl Snap for DetailedCpi {
    fn encode(&self, out: &mut Vec<u8>) {
        self.breakdown.encode(out);
        self.l2_private_data.encode(out);
        self.l2_instructions.encode(out);
        self.l2_shared_load.encode(out);
        self.l2_shared_coherence.encode(out);
        self.off_chip_instructions.encode(out);
    }

    fn decode(r: &mut SnapReader<'_>) -> Self {
        DetailedCpi {
            breakdown: r.get(),
            l2_private_data: r.get(),
            l2_instructions: r.get(),
            l2_shared_load: r.get(),
            l2_shared_coherence: r.get(),
            off_chip_instructions: r.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_component_access() {
        let mut b = CpiBreakdown::default();
        b.add(CpiComponent::Busy, 1.0);
        b.add(CpiComponent::L2, 0.4);
        b.add(CpiComponent::OffChip, 0.3);
        b.add(CpiComponent::Other, 0.1);
        assert!((b.total() - 1.8).abs() < 1e-12);
        assert_eq!(b.component(CpiComponent::L2), 0.4);
        assert_eq!(b.component(CpiComponent::Reclassification), 0.0);
    }

    #[test]
    fn scaling_divides_every_component() {
        let mut b = CpiBreakdown::default();
        b.add(CpiComponent::L1ToL1, 10.0);
        b.add(CpiComponent::Reclassification, 4.0);
        let s = b.scaled(2.0);
        assert_eq!(s.l1_to_l1, 5.0);
        assert_eq!(s.reclassification, 2.0);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn scaling_by_zero_panics() {
        CpiBreakdown::default().scaled(0.0);
    }

    #[test]
    fn detailed_split_by_class_and_coherence() {
        let mut d = DetailedCpi::default();
        d.add_l2(AccessClass::PrivateData, false, 0.2);
        d.add_l2(AccessClass::Instruction, false, 0.3);
        d.add_l2(AccessClass::SharedData, false, 0.1);
        d.add_l2(AccessClass::SharedData, true, 0.25);
        d.add_off_chip(AccessClass::Instruction, 0.5);
        d.add_off_chip(AccessClass::PrivateData, 0.4);
        assert!((d.breakdown.l2 - 0.85).abs() < 1e-12);
        assert!((d.l2_private_data - 0.2).abs() < 1e-12);
        assert!((d.l2_instructions - 0.3).abs() < 1e-12);
        assert!((d.l2_shared_load - 0.1).abs() < 1e-12);
        assert!((d.l2_shared_coherence - 0.25).abs() < 1e-12);
        assert!((d.breakdown.off_chip - 0.9).abs() < 1e-12);
        assert!((d.off_chip_instructions - 0.5).abs() < 1e-12);
        assert!((d.shared_access_cpi() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn component_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            CpiComponent::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CpiComponent::ALL.len());
        assert_eq!(CpiComponent::L1ToL1.to_string(), "L1-to-L1");
    }
}
