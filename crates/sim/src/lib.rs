//! Trace-driven tiled-CMP simulator comparing last-level-cache designs.
//!
//! This crate ties the substrates together — the torus network
//! (`rnuca-noc`), the cache arrays (`rnuca-cache`), the MOSI directory
//! (`rnuca-coherence`), the memory controllers (`rnuca-mem`), the OS page
//! classifier (`rnuca-os`), the R-NUCA placement engine (`rnuca`) and the
//! synthetic workloads (`rnuca-workloads`) — into the experiment the paper
//! runs: feed the same reference stream to five LLC organisations and compare
//! their CPI breakdowns.
//!
//! The five designs (Section 5.1):
//!
//! | Design  | L2 organisation | Coherence at L2 |
//! |---------|-----------------|-----------------|
//! | Private | every slice is a private L2 for its tile, blocks replicate freely | full-map MOSI directory |
//! | ASR     | private + probabilistic local allocation of clean shared blocks   | full-map MOSI directory |
//! | Shared  | blocks address-interleaved over all slices, one location each     | none (L1-only directory) |
//! | R-NUCA  | class-aware placement: local / rotational cluster / interleaved    | none (L1-only directory) |
//! | Ideal   | aggregate capacity at local-slice latency                           | none |
//!
//! The timing model is additive and trace-driven: every L2 reference is
//! charged the network traversals, slice lookups, and DRAM accesses its
//! design routes it through, using the Table 1 latencies. Stores are charged
//! to the "other" CPI component, mirroring the paper's accounting.
//!
//! # Example
//!
//! ```
//! use rnuca_sim::{CmpSimulator, LlcDesign};
//! use rnuca_workloads::{TraceGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::oltp_db2();
//! let mut gen = TraceGenerator::new(&spec, 1);
//! let mut sim = CmpSimulator::new(LlcDesign::RNuca { instr_cluster_size: 4 }, &spec);
//! sim.run_warmup(&mut gen, 20_000);
//! let result = sim.run_measured(&mut gen, 20_000);
//! assert!(result.cpi.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpi;
pub mod design;
pub mod engine;
pub mod experiment;
pub mod fused;
pub mod journal;
pub mod report;
pub mod scenario;
pub mod simulator;
pub mod snapshot;
pub mod tile;

pub use cpi::{CpiBreakdown, CpiComponent, DetailedCpi};
pub use design::{AsrPolicy, LlcDesign};
pub use engine::{ExperimentEngine, FailureCause, JobFailure};
pub use experiment::{DesignComparison, ExperimentConfig, RunResult, WorkloadResults};
pub use fused::{group_indices, run_fused_forked, run_group_forked, FusedDriver, FusedGroupKey};
pub use journal::{
    JournalEntry, JournalError, JournalFailure, JournalReplay, SweepJournal, JOURNAL_VERSION,
};
pub use report::TextTable;
pub use scenario::{
    failed_record, result_from, sweep_record, QuarantinedSweep, ResumeSummary, ScenarioJob,
    ScenarioMatrix, ScenarioResult, ScenarioSweep, SweepError, SWEEP_SCHEMA_VERSION,
};
pub use simulator::{CmpSimulator, MeasuredRun};
pub use snapshot::{SimSnapshot, SnapshotArena, SnapshotKey, WarmupClass};
pub use tile::{BlockMeta, Tile, TileAccess};
