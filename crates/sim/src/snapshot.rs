//! The warmed-snapshot arena: warm each simulator state once, fork it
//! everywhere.
//!
//! Profiling the v3 benchmark loop showed warm-up dominating wall-clock:
//! roughly two thirds of every timed scenario was spent rebuilding the same
//! warmed caches, page tables, and directory state that an earlier job with
//! the same `(design, workload, geometry, seed)` had already built. The
//! ASR best-of-six sweep is the worst case — six variants, one shared warmed
//! state, warmed six times.
//!
//! [`SnapshotArena`] removes that redundancy the same way the
//! [`TraceArena`] removes trace-generation redundancy: each unique
//! [`SnapshotKey`] is *generated exactly once* — a canonical simulator is
//! warmed over the arena-shared reference stream and its complete mutable
//! state serialized into a compact [`SimSnapshot`] — and every job that
//! needs the warmed state *forks* a fresh simulator from the checkpoint via
//! [`SimSnapshot::fork`] instead of re-running warm-up.
//!
//! Determinism guarantee: a fork restores every field warm-up mutates —
//! cache slabs with their occupancy masks and age vectors, victim-buffer
//! FIFO links, the coherence entry table, the OS page table and per-core
//! TLB LRU lists, the dirty-block map, the RNG, the clock — bit-for-bit, so
//! `fork + run_measured` produces the byte-identical [`MeasuredRun`] that
//! `run_warmup + run_measured` on a fresh simulator produces. The
//! differential suite in `tests/snapshot_differential.rs` pins this down
//! for every design, and the golden-result digests would catch any drift.
//!
//! Sharing across designs: warm-up state depends on the design's *placement
//! and allocation* behaviour, not on the parameters measurement sweeps. All
//! six ASR variants warm identically (see `ASR_WARMUP_PROBABILITY` in the
//! simulator), so they collapse onto one [`WarmupClass::Asr`] checkpoint —
//! the best-of-six sweep warms once, not six times.
//!
//! [`TraceArena`]: rnuca_workloads::TraceArena
//! [`MeasuredRun`]: crate::simulator::MeasuredRun

use crate::design::{AsrPolicy, LlcDesign};
use crate::simulator::CmpSimulator;
use rnuca_workloads::{TraceArena, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The warm-up equivalence class of a design: two designs share a class
/// exactly when they build bit-identical state from the same warm-up
/// stream, and therefore can fork from one checkpoint.
///
/// The six ASR variants collapse onto [`WarmupClass::Asr`] because warm-up
/// allocation decisions use a canonical probability for all of them (and
/// the adaptive controller never runs outside measurement). R-NUCA keeps
/// its instruction-cluster size in the class — cluster size changes where
/// warm-up places instruction blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarmupClass {
    /// The private design.
    Private,
    /// Any ASR variant (static probability or adaptive).
    Asr,
    /// The address-interleaved shared design.
    Shared,
    /// R-NUCA with the given rotational-cluster size.
    RNuca {
        /// Instruction-cluster size of the design being warmed.
        instr_cluster_size: usize,
    },
    /// The ideal (aggregate capacity, local latency) design.
    Ideal,
}

impl WarmupClass {
    /// The warm-up class of `design`.
    pub fn of(design: LlcDesign) -> Self {
        match design {
            LlcDesign::Private => WarmupClass::Private,
            LlcDesign::Asr { .. } => WarmupClass::Asr,
            LlcDesign::Shared => WarmupClass::Shared,
            LlcDesign::RNuca { instr_cluster_size } => WarmupClass::RNuca { instr_cluster_size },
            LlcDesign::Ideal => WarmupClass::Ideal,
        }
    }

    /// The representative design the arena warms for this class. Any design
    /// in the class forks from the representative's checkpoint.
    pub fn canonical_design(self) -> LlcDesign {
        match self {
            WarmupClass::Private => LlcDesign::Private,
            WarmupClass::Asr => LlcDesign::Asr {
                policy: AsrPolicy::Adaptive,
            },
            WarmupClass::Shared => LlcDesign::Shared,
            WarmupClass::RNuca { instr_cluster_size } => LlcDesign::RNuca { instr_cluster_size },
            WarmupClass::Ideal => LlcDesign::Ideal,
        }
    }
}

/// FNV-1a over the spec's full `Debug` rendering.
///
/// Deliberately *stricter* than the trace arena's profile fingerprint: the
/// trace key may exclude cost-only fields (slice capacity, latencies)
/// because they cannot change stream contents, but they absolutely change
/// the *warmed state* the stream builds — a 512 KB slice warms a different
/// tag array than a 1 MB slice. Fingerprinting every field keeps a
/// capacity-sweep scenario from ever aliasing another point's checkpoint.
fn spec_fingerprint(spec: &WorkloadSpec) -> u64 {
    let mut h = rnuca_types::Fnv64::new();
    h.write(format!("{spec:?}").as_bytes());
    h.finish()
}

/// The memoization key of one warmed checkpoint.
///
/// Two jobs share a checkpoint exactly when their warmed state is
/// guaranteed identical: same workload (name plus full-spec fingerprint,
/// which covers the trace geometry *and* every cost parameter that shapes
/// cache state), same seed, same [`WarmupClass`], and same warm-up length.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    workload: String,
    fingerprint: u64,
    seed: u64,
    class: WarmupClass,
    warmup_refs: usize,
}

impl SnapshotKey {
    /// The key of `design`'s warmed state over `spec`'s stream.
    pub fn new(design: LlcDesign, spec: &WorkloadSpec, seed: u64, warmup_refs: usize) -> Self {
        SnapshotKey {
            workload: spec.name.clone(),
            fingerprint: spec_fingerprint(spec),
            seed,
            class: WarmupClass::of(design),
            warmup_refs,
        }
    }

    /// The warm-up class this key belongs to.
    pub fn class(&self) -> WarmupClass {
        self.class
    }

    /// The warm-up length (in L2 references) the checkpoint covers.
    pub fn warmup_refs(&self) -> usize {
        self.warmup_refs
    }
}

/// One warmed checkpoint: the serialized mutable state of a simulator that
/// has consumed exactly `warmup_refs` references of its stream.
///
/// The buffer holds only state — no configuration — so forking rebuilds the
/// target design's own latency tables and policy parameters and then
/// overlays the warmed state (see [`CmpSimulator::save_state`]).
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    class: WarmupClass,
    seed: u64,
    warmup_refs: usize,
    bytes: Vec<u8>,
}

impl SimSnapshot {
    /// Warms a canonical simulator for `design`'s class over `spec`'s
    /// arena-shared stream and captures the checkpoint.
    ///
    /// `min_trace_len` sizes the underlying trace slab (pass the *total*
    /// run length, warm-up plus measurement, so the measured phase that
    /// follows a fork replays the same slab instead of regrowing it).
    pub fn capture(
        traces: &TraceArena,
        design: LlcDesign,
        spec: &WorkloadSpec,
        seed: u64,
        warmup_refs: usize,
        min_trace_len: usize,
    ) -> Self {
        let class = WarmupClass::of(design);
        let mut slice = traces.slice(spec, seed, min_trace_len.max(warmup_refs));
        let mut sim = CmpSimulator::with_seed(class.canonical_design(), spec, seed);
        sim.run_warmup(&mut slice, warmup_refs);
        SimSnapshot {
            class,
            seed,
            warmup_refs,
            bytes: sim.save_state(),
        }
    }

    /// Builds a fresh simulator for `design` and restores the checkpoint
    /// into it — the fork is bit-identical (in simulation behaviour) to a
    /// simulator that streamed the warm-up itself.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not in the class this checkpoint was warmed
    /// for: state from a different class would be silently wrong, never
    /// just slower.
    pub fn fork(&self, design: LlcDesign, spec: &WorkloadSpec) -> CmpSimulator {
        assert_eq!(
            WarmupClass::of(design),
            self.class,
            "cannot fork a {design} simulator from a {:?} checkpoint",
            self.class
        );
        let mut sim = CmpSimulator::with_seed(design, spec, self.seed);
        sim.load_state(&self.bytes);
        sim
    }

    /// The warm-up class the checkpoint was captured under.
    pub fn class(&self) -> WarmupClass {
        self.class
    }

    /// References consumed by the checkpoint; a forked simulator's trace
    /// cursor must skip exactly this prefix before measuring.
    pub fn warmup_refs(&self) -> usize {
        self.warmup_refs
    }

    /// Heap bytes of the serialized state.
    pub fn packed_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// Per-key slot: its own lock, so warming one checkpoint never blocks
/// requests for a different one.
#[derive(Debug, Default)]
struct Cell {
    snap: Mutex<Option<Arc<SimSnapshot>>>,
}

/// A thread-safe, memoizing store of warmed checkpoints.
///
/// The arena guarantees each unique [`SnapshotKey`] is warmed exactly once,
/// even under concurrent requests — the same exactly-once discipline as
/// [`TraceArena`]: the key map hands out per-key cells, and warm-up runs
/// under the cell's own lock (two workers asking for the *same* checkpoint
/// serialize on it and the second finds it filled; workers asking for
/// *different* checkpoints warm in parallel).
///
/// Experiment layers pre-populate the unique keys of a job list in parallel
/// (see [`SnapshotArena::populate`]) and then resolve every job through
/// [`SnapshotArena::snapshot`], which is a lock-and-clone once the
/// checkpoint exists.
#[derive(Debug, Default)]
pub struct SnapshotArena {
    cells: Mutex<HashMap<SnapshotKey, Arc<Cell>>>,
    generations: AtomicUsize,
}

impl SnapshotArena {
    /// An empty arena.
    pub fn new() -> Self {
        SnapshotArena::default()
    }

    /// Number of distinct checkpoints held.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("snapshot key map poisoned").len()
    }

    /// Whether the arena holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many warm-ups actually ran (diagnostics: equals
    /// [`SnapshotArena::len`] exactly when every request was deduplicated).
    pub fn generations(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// Total heap bytes of all serialized checkpoints currently held.
    pub fn packed_bytes(&self) -> usize {
        let cells: Vec<Arc<Cell>> = self
            .cells
            .lock()
            .expect("snapshot key map poisoned")
            .values()
            .cloned()
            .collect();
        cells
            .iter()
            .filter_map(|c| {
                c.snap
                    .lock()
                    .expect("snapshot cell poisoned")
                    .as_ref()
                    .map(|s| s.packed_bytes())
            })
            .sum()
    }

    /// The shared checkpoint for `design`'s class over `spec`'s stream —
    /// warmed on first request, memoized after.
    ///
    /// `min_trace_len` sizes the trace slab the warm-up replays; pass the
    /// total run length so later measured phases reuse the slab (see
    /// [`SimSnapshot::capture`]).
    pub fn snapshot(
        &self,
        traces: &TraceArena,
        design: LlcDesign,
        spec: &WorkloadSpec,
        seed: u64,
        warmup_refs: usize,
        min_trace_len: usize,
    ) -> Arc<SimSnapshot> {
        let cell = {
            let mut cells = self.cells.lock().expect("snapshot key map poisoned");
            Arc::clone(
                cells
                    .entry(SnapshotKey::new(design, spec, seed, warmup_refs))
                    .or_default(),
            )
        };
        let mut slot = cell.snap.lock().expect("snapshot cell poisoned");
        if let Some(snap) = slot.as_ref() {
            return Arc::clone(snap);
        }
        let snap = Arc::new(SimSnapshot::capture(
            traces,
            design,
            spec,
            seed,
            warmup_refs,
            min_trace_len,
        ));
        self.generations.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&snap));
        snap
    }

    /// Ensures the checkpoint exists, without returning it — the parallel
    /// pre-population entry point.
    pub fn populate(
        &self,
        traces: &TraceArena,
        design: LlcDesign,
        spec: &WorkloadSpec,
        seed: u64,
        warmup_refs: usize,
        min_trace_len: usize,
    ) {
        self.snapshot(traces, design, spec, seed, warmup_refs, min_trace_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asr_variants_collapse_onto_one_class() {
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(
                WarmupClass::of(LlcDesign::Asr {
                    policy: AsrPolicy::Static(p)
                }),
                WarmupClass::Asr
            );
        }
        assert_eq!(
            WarmupClass::of(LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            }),
            WarmupClass::Asr
        );
        assert_eq!(
            WarmupClass::Asr.canonical_design(),
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            }
        );
    }

    #[test]
    fn rnuca_cluster_size_separates_classes() {
        let a = WarmupClass::of(LlcDesign::RNuca {
            instr_cluster_size: 4,
        });
        let b = WarmupClass::of(LlcDesign::RNuca {
            instr_cluster_size: 8,
        });
        assert_ne!(a, b);
        assert_eq!(
            a.canonical_design(),
            LlcDesign::RNuca {
                instr_cluster_size: 4
            }
        );
    }

    #[test]
    fn every_class_canonical_design_round_trips() {
        for design in LlcDesign::speedup_set() {
            let class = WarmupClass::of(design);
            assert_eq!(WarmupClass::of(class.canonical_design()), class);
        }
    }

    #[test]
    fn keys_separate_what_must_not_share_checkpoints() {
        let spec = WorkloadSpec::oltp_db2();
        let base = SnapshotKey::new(LlcDesign::Shared, &spec, 7, 10_000);
        assert_eq!(
            base,
            SnapshotKey::new(LlcDesign::Shared, &WorkloadSpec::oltp_db2(), 7, 10_000)
        );
        assert_eq!(base.class(), WarmupClass::Shared);
        assert_eq!(base.warmup_refs(), 10_000);
        assert_ne!(
            base,
            SnapshotKey::new(LlcDesign::Shared, &spec, 8, 10_000),
            "seed separates"
        );
        assert_ne!(
            base,
            SnapshotKey::new(LlcDesign::Shared, &spec, 7, 20_000),
            "warm-up length separates"
        );
        assert_ne!(
            base,
            SnapshotKey::new(LlcDesign::Private, &spec, 7, 10_000),
            "class separates"
        );
        assert_ne!(
            base,
            SnapshotKey::new(LlcDesign::Shared, &WorkloadSpec::apache(), 7, 10_000),
            "workload separates"
        );

        // All six ASR variants share one key.
        let asr = |policy| SnapshotKey::new(LlcDesign::Asr { policy }, &spec, 7, 10_000);
        assert_eq!(asr(AsrPolicy::Static(0.0)), asr(AsrPolicy::Adaptive));
        assert_eq!(asr(AsrPolicy::Static(1.0)), asr(AsrPolicy::Static(0.25)));

        // Cost-only spec fields (which share trace slabs) still separate
        // snapshots: a different slice capacity warms different state.
        let point = rnuca_types::config::ConfigPoint {
            slice_capacity_kb: Some(512),
            ..Default::default()
        };
        let resized = spec.at_config_point(&point).unwrap();
        assert_ne!(
            base,
            SnapshotKey::new(LlcDesign::Shared, &resized, 7, 10_000),
            "slice capacity separates"
        );
    }

    #[test]
    fn arena_warms_each_unique_key_exactly_once() {
        let traces = TraceArena::new();
        let arena = SnapshotArena::new();
        let spec = WorkloadSpec::em3d();
        let a = arena.snapshot(&traces, LlcDesign::Shared, &spec, 3, 2_000, 4_000);
        let b = arena.snapshot(&traces, LlcDesign::Shared, &spec, 3, 2_000, 4_000);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.generations(), 1);
        assert!(arena.packed_bytes() > 0);
        assert!(!arena.is_empty());

        // A different class warms separately.
        arena.populate(&traces, LlcDesign::Private, &spec, 3, 2_000, 4_000);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.generations(), 2);
        // Both warmed off one shared trace slab.
        assert_eq!(traces.len(), 1);
        assert_eq!(traces.generations(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot fork")]
    fn forking_across_classes_panics() {
        let traces = TraceArena::new();
        let spec = WorkloadSpec::em3d();
        let snap = SimSnapshot::capture(&traces, LlcDesign::Shared, &spec, 1, 500, 500);
        snap.fork(LlcDesign::Private, &spec);
    }
}
