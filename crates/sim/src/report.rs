//! Plain-text table formatting for the figure harness and examples.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use rnuca_sim::TextTable;
/// let mut t = TextTable::new(vec!["workload", "P", "S", "R"]);
/// t.add_row(vec!["OLTP DB2".into(), "1.00".into(), "0.93".into(), "0.88".into()]);
/// let s = t.to_string();
/// assert!(s.contains("OLTP DB2"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty cells.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}"));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimal places for report cells.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a value as a percentage with one decimal place.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["longer-name".into(), "2.5".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["x".into()]);
        let s = t.to_string();
        assert!(s.contains('x'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.143), "14.3%");
    }
}
