//! Differential fork-fidelity suite: forking a warmed checkpoint must be
//! indistinguishable — bit for bit — from streaming the warm-up yourself.
//!
//! For every LLC design (including a static ASR variant that shares the
//! adaptive variant's checkpoint) × three geometries (16/32/64 cores) ×
//! three seeds, the suite runs the same scenario twice: once the classic
//! way (`run_warmup` then `run_measured` on a fresh simulator) and once the
//! arena way (fork the memoized [`SnapshotArena`] checkpoint, seat the
//! replay cursor past the warm-up prefix, then `run_measured`). The two
//! [`MeasuredRun`]s must be equal *and* render identical `Debug` strings —
//! `f64`'s `Debug` output is the shortest round-trippable decimal form, so
//! string equality is bit-identity on every CPI component and rate.
//!
//! The suite also pins the arena's sharing discipline: forking twice from
//! one checkpoint yields identical runs (no state leaks through a fork),
//! and concurrent requests for one key warm exactly once.

use rnuca_sim::{AsrPolicy, CmpSimulator, LlcDesign, MeasuredRun, SnapshotArena};
use rnuca_types::config::ConfigPoint;
use rnuca_workloads::{TraceArena, WorkloadSpec};

const WARMUP: usize = 5_000;
const MEASURED: usize = 4_000;
const CORE_COUNTS: [usize; 3] = [16, 32, 64];
const SEEDS: [u64; 3] = [11, 20_260_727, 0x00C0_FFEE];

/// The five designs plus a static ASR variant, so the matrix covers a fork
/// whose design differs from the canonical design its checkpoint was
/// warmed with.
fn designs() -> Vec<LlcDesign> {
    vec![
        LlcDesign::Private,
        LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        },
        LlcDesign::Asr {
            policy: AsrPolicy::Static(0.25),
        },
        LlcDesign::Shared,
        LlcDesign::rnuca_default(),
        LlcDesign::Ideal,
    ]
}

fn geometries() -> Vec<WorkloadSpec> {
    CORE_COUNTS
        .iter()
        .map(|&cores| {
            let point = ConfigPoint {
                num_cores: Some(cores),
                ..ConfigPoint::default()
            };
            WorkloadSpec::oltp_db2()
                .at_config_point(&point)
                .expect("standard core counts are valid for the preset")
        })
        .collect()
}

fn warm_then_measure(
    design: LlcDesign,
    spec: &WorkloadSpec,
    seed: u64,
    traces: &TraceArena,
) -> MeasuredRun {
    let mut slice = traces.slice(spec, seed, WARMUP + MEASURED);
    let mut sim = CmpSimulator::with_seed(design, spec, seed);
    sim.run_warmup(&mut slice, WARMUP);
    sim.run_measured(&mut slice, MEASURED)
}

fn fork_then_measure(
    design: LlcDesign,
    spec: &WorkloadSpec,
    seed: u64,
    traces: &TraceArena,
    snapshots: &SnapshotArena,
) -> MeasuredRun {
    let snap = snapshots.snapshot(traces, design, spec, seed, WARMUP, WARMUP + MEASURED);
    let mut sim = snap.fork(design, spec);
    let mut slice = traces.slice(spec, seed, WARMUP + MEASURED);
    slice.skip(WARMUP);
    sim.run_measured(&mut slice, MEASURED)
}

#[test]
fn forked_runs_are_byte_identical_to_streamed_runs() {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    for spec in geometries() {
        for seed in SEEDS {
            for design in designs() {
                let streamed = warm_then_measure(design, &spec, seed, &traces);
                let forked = fork_then_measure(design, &spec, seed, &traces, &snapshots);
                assert_eq!(
                    streamed,
                    forked,
                    "fork diverged from streaming: {design} / {} cores / seed {seed}",
                    spec.num_cores()
                );
                assert_eq!(
                    format!("{streamed:?}"),
                    format!("{forked:?}"),
                    "Debug digests diverged: {design} / {} cores / seed {seed}",
                    spec.num_cores()
                );
            }
        }
    }
    // Six designs, but only five warm-up classes: the two ASR variants
    // shared one checkpoint per (geometry, seed), and nothing warmed twice.
    assert_eq!(snapshots.len(), CORE_COUNTS.len() * SEEDS.len() * 5);
    assert_eq!(snapshots.generations(), snapshots.len());
}

#[test]
fn forking_twice_from_one_snapshot_yields_identical_runs() {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let spec = WorkloadSpec::em3d();
    let design = LlcDesign::rnuca_default();
    let seed = 7;
    let first = fork_then_measure(design, &spec, seed, &traces, &snapshots);
    let second = fork_then_measure(design, &spec, seed, &traces, &snapshots);
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "a fork must not mutate the checkpoint it came from"
    );
    assert_eq!(
        snapshots.generations(),
        1,
        "the second fork reused the checkpoint"
    );
}

#[test]
fn concurrent_requests_warm_each_unique_key_exactly_once() {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let spec = WorkloadSpec::em3d();
    // Eight threads race on two distinct keys (two warm-up classes).
    std::thread::scope(|s| {
        for i in 0..8 {
            let (traces, snapshots, spec) = (&traces, &snapshots, &spec);
            s.spawn(move || {
                let design = if i % 2 == 0 {
                    LlcDesign::Shared
                } else {
                    LlcDesign::Private
                };
                snapshots.populate(traces, design, spec, 5, 1_000, 2_000);
            });
        }
    });
    assert_eq!(snapshots.len(), 2, "two unique keys were requested");
    assert_eq!(
        snapshots.generations(),
        2,
        "each unique key warmed exactly once despite eight concurrent requests"
    );
    assert_eq!(
        traces.generations(),
        1,
        "all warm-ups replayed one shared slab"
    );
}
