//! Golden-results pinning: the refactor-proof digest of the simulator.
//!
//! One `(design, workload, seed)` triple per LLC design is run end-to-end
//! and the entire [`MeasuredRun`] — every CPI component, rate, and counter —
//! is compared against a recorded golden value. `f64`'s `Debug` output is
//! the shortest round-trippable decimal form, so string equality here is
//! bit-identity: any change to simulation semantics (replacement order, RNG
//! draw sequence, cost accounting) flips at least one digit and fails the
//! test, while pure performance work (layout, batching, probe merging)
//! leaves it untouched. The values were recorded before the flat-slab cache
//! refactor and prove it preserved simulation behaviour exactly. Every test
//! asserts the digest over both trace paths — streaming generation and
//! trace-arena replay — so the shared-slab machinery is pinned to the same
//! bit-identical outputs.

use rnuca_sim::{AsrPolicy, CmpSimulator, LlcDesign};
use rnuca_workloads::{TraceArena, TraceGenerator, WorkloadSpec};

const WARMUP: usize = 20_000;
const MEASURED: usize = 20_000;
const SEED: u64 = 20_260_727;

fn run(design: LlcDesign, spec: &WorkloadSpec) -> String {
    let mut gen = TraceGenerator::new(spec, SEED);
    let mut sim = CmpSimulator::with_seed(design, spec, SEED);
    sim.run_warmup(&mut gen, WARMUP);
    format!("{:?}", sim.run_measured(&mut gen, MEASURED))
}

/// [`run`] replaying the stream from a trace-arena slab instead of the
/// streaming generator. Every golden test asserts both paths against the
/// same recorded digest, proving arena replay is bit-identical to streaming
/// generation on the pinned simulation outputs.
fn run_replayed(design: LlcDesign, spec: &WorkloadSpec) -> String {
    let mut slice = TraceArena::new().slice(spec, SEED, WARMUP + MEASURED);
    let mut sim = CmpSimulator::with_seed(design, spec, SEED);
    sim.run_warmup(&mut slice, WARMUP);
    format!("{:?}", sim.run_measured(&mut slice, MEASURED))
}

#[test]
fn golden_private_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.043192799999999996, l2: 0.8097137999999999, off_chip: 1.6485504, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0171696, l2_instructions: 0.7428918, l2_shared_load: 0.0012936, l2_shared_coherence: 0.0483588, off_chip_instructions: 0.1555386 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.28605, l1_to_l1_rate: 0.029, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Private, &WorkloadSpec::oltp_db2()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Private, &WorkloadSpec::oltp_db2()),
        golden
    );
}

#[test]
fn golden_asr_adaptive_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.043192799999999996, l2: 0.9310392, off_chip: 1.6485504, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0171696, l2_instructions: 0.8642046, l2_shared_load: 0.0012936, l2_shared_coherence: 0.048371399999999995, off_chip_instructions: 0.1555386 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.28605, l1_to_l1_rate: 0.029, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(
        run(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            },
            &WorkloadSpec::oltp_db2()
        ),
        golden
    );
    assert_eq!(
        run_replayed(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            },
            &WorkloadSpec::oltp_db2()
        ),
        golden
    );
}

#[test]
fn golden_shared_em3d() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.7, l1_to_l1: 0.0005302, l2: 0.0121924, off_chip: 1.5891612000000002, other: 0.1327788, reclassification: 0.0 }, l2_private_data: 0.0006270000000000001, l2_instructions: 0.0107118, l2_shared_load: 0.0008536, l2_shared_coherence: 0.0, off_chip_instructions: 0.0104258 }, accesses: 20000, instructions: 909090.9090909091, off_chip_rate: 0.54845, l1_to_l1_rate: 0.0009, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Shared, &WorkloadSpec::em3d()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Shared, &WorkloadSpec::em3d()),
        golden
    );
}

#[test]
fn golden_rnuca_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.022621199999999998, l2: 0.33446699999999996, off_chip: 1.8754134, other: 0.13377, reclassification: 0.050780099999999995 }, l2_private_data: 0.0171696, l2_instructions: 0.2938908, l2_shared_load: 0.0234066, l2_shared_coherence: 0.0, off_chip_instructions: 0.504042 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.35735, l1_to_l1_rate: 0.02755, misclassification_rate: 0.0121, reclassifications: 116 }";
    assert_eq!(
        run(LlcDesign::rnuca_default(), &WorkloadSpec::oltp_db2()),
        golden
    );
    assert_eq!(
        run_replayed(LlcDesign::rnuca_default(), &WorkloadSpec::oltp_db2()),
        golden
    );
}

#[test]
fn golden_ideal_dss_qry6() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.8, l1_to_l1: 0.0, l2: 0.058130799999999996, off_chip: 2.254668, other: 0.03822, reclassification: 0.0 }, l2_private_data: 3.64e-5, l2_instructions: 0.057220799999999995, l2_shared_load: 0.0008736, l2_shared_coherence: 0.0, off_chip_instructions: 0.0271362 }, accesses: 20000, instructions: 769230.7692307692, off_chip_rate: 0.7353, l1_to_l1_rate: 0.0, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Ideal, &WorkloadSpec::dss_qry6()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Ideal, &WorkloadSpec::dss_qry6()),
        golden
    );
}
