//! Golden-results pinning: the refactor-proof digest of the simulator.
//!
//! One `(design, workload, seed)` triple per LLC design is run end-to-end
//! and the entire [`MeasuredRun`] — every CPI component, rate, and counter —
//! is compared against a recorded golden value. `f64`'s `Debug` output is
//! the shortest round-trippable decimal form, so string equality here is
//! bit-identity: any change to simulation semantics (replacement order, RNG
//! draw sequence, cost accounting) flips at least one digit and fails the
//! test, while pure performance work (layout, batching, probe merging)
//! leaves it untouched. The values were recorded before the flat-slab cache
//! refactor and prove it preserved simulation behaviour exactly. Every test
//! asserts the digest over three paths — streaming generation, trace-arena
//! replay, and warmed-checkpoint forking — so the shared-slab machinery and
//! the snapshot codec are pinned to the same bit-identical outputs. The
//! `*_64c` tests repeat the matrix at a second geometry (64 cores), where
//! the torus, directory, and page-classification state are all larger.

use rnuca_sim::{AsrPolicy, CmpSimulator, LlcDesign, SnapshotArena};
use rnuca_types::config::ConfigPoint;
use rnuca_workloads::{TraceArena, TraceGenerator, WorkloadSpec};

const WARMUP: usize = 20_000;
const MEASURED: usize = 20_000;
const SEED: u64 = 20_260_727;

fn run(design: LlcDesign, spec: &WorkloadSpec) -> String {
    let mut gen = TraceGenerator::new(spec, SEED);
    let mut sim = CmpSimulator::with_seed(design, spec, SEED);
    sim.run_warmup(&mut gen, WARMUP);
    format!("{:?}", sim.run_measured(&mut gen, MEASURED))
}

/// [`run`] replaying the stream from a trace-arena slab instead of the
/// streaming generator. Every golden test asserts both paths against the
/// same recorded digest, proving arena replay is bit-identical to streaming
/// generation on the pinned simulation outputs.
fn run_replayed(design: LlcDesign, spec: &WorkloadSpec) -> String {
    let mut slice = TraceArena::new().slice(spec, SEED, WARMUP + MEASURED);
    let mut sim = CmpSimulator::with_seed(design, spec, SEED);
    sim.run_warmup(&mut slice, WARMUP);
    format!("{:?}", sim.run_measured(&mut slice, MEASURED))
}

/// [`run`] going through the snapshot arena: warm a canonical checkpoint,
/// fork it, skip the replay cursor past the warm-up prefix, and measure.
/// Asserting this path against the same recorded digest proves the
/// save/restore codec preserves simulation behaviour exactly.
fn run_forked(design: LlcDesign, spec: &WorkloadSpec) -> String {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let snap = snapshots.snapshot(&traces, design, spec, SEED, WARMUP, WARMUP + MEASURED);
    let mut sim = snap.fork(design, spec);
    let mut slice = traces.slice(spec, SEED, WARMUP + MEASURED);
    slice.skip(WARMUP);
    format!("{:?}", sim.run_measured(&mut slice, MEASURED))
}

/// The preset re-pinned to 64 cores — the second golden geometry.
fn at_64_cores(spec: &WorkloadSpec) -> WorkloadSpec {
    let point = ConfigPoint {
        num_cores: Some(64),
        ..ConfigPoint::default()
    };
    spec.at_config_point(&point)
        .expect("64 cores is valid for every preset")
}

#[test]
fn golden_private_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.043192799999999996, l2: 0.8097137999999999, off_chip: 1.6485504, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0171696, l2_instructions: 0.7428918, l2_shared_load: 0.0012936, l2_shared_coherence: 0.0483588, off_chip_instructions: 0.1555386 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.28605, l1_to_l1_rate: 0.029, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Private, &WorkloadSpec::oltp_db2()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Private, &WorkloadSpec::oltp_db2()),
        golden
    );
    assert_eq!(
        run_forked(LlcDesign::Private, &WorkloadSpec::oltp_db2()),
        golden
    );
}

#[test]
fn golden_asr_adaptive_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.043192799999999996, l2: 0.9310392, off_chip: 1.6485504, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0171696, l2_instructions: 0.8642046, l2_shared_load: 0.0012936, l2_shared_coherence: 0.048371399999999995, off_chip_instructions: 0.1555386 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.28605, l1_to_l1_rate: 0.029, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(
        run(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            },
            &WorkloadSpec::oltp_db2()
        ),
        golden
    );
    assert_eq!(
        run_replayed(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            },
            &WorkloadSpec::oltp_db2()
        ),
        golden
    );
    assert_eq!(
        run_forked(
            LlcDesign::Asr {
                policy: AsrPolicy::Adaptive
            },
            &WorkloadSpec::oltp_db2()
        ),
        golden
    );
}

#[test]
fn golden_shared_em3d() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.7, l1_to_l1: 0.0005302, l2: 0.0121924, off_chip: 1.5891612000000002, other: 0.1327788, reclassification: 0.0 }, l2_private_data: 0.0006270000000000001, l2_instructions: 0.0107118, l2_shared_load: 0.0008536, l2_shared_coherence: 0.0, off_chip_instructions: 0.0104258 }, accesses: 20000, instructions: 909090.9090909091, off_chip_rate: 0.54845, l1_to_l1_rate: 0.0009, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Shared, &WorkloadSpec::em3d()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Shared, &WorkloadSpec::em3d()),
        golden
    );
    assert_eq!(run_forked(LlcDesign::Shared, &WorkloadSpec::em3d()), golden);
}

#[test]
fn golden_rnuca_oltp_db2() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.022621199999999998, l2: 0.33446699999999996, off_chip: 1.8754134, other: 0.13377, reclassification: 0.050780099999999995 }, l2_private_data: 0.0171696, l2_instructions: 0.2938908, l2_shared_load: 0.0234066, l2_shared_coherence: 0.0, off_chip_instructions: 0.504042 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.35735, l1_to_l1_rate: 0.02755, misclassification_rate: 0.0121, reclassifications: 116 }";
    assert_eq!(
        run(LlcDesign::rnuca_default(), &WorkloadSpec::oltp_db2()),
        golden
    );
    assert_eq!(
        run_replayed(LlcDesign::rnuca_default(), &WorkloadSpec::oltp_db2()),
        golden
    );
    assert_eq!(
        run_forked(LlcDesign::rnuca_default(), &WorkloadSpec::oltp_db2()),
        golden
    );
}

#[test]
fn golden_ideal_dss_qry6() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.8, l1_to_l1: 0.0, l2: 0.058130799999999996, off_chip: 2.254668, other: 0.03822, reclassification: 0.0 }, l2_private_data: 3.64e-5, l2_instructions: 0.057220799999999995, l2_shared_load: 0.0008736, l2_shared_coherence: 0.0, off_chip_instructions: 0.0271362 }, accesses: 20000, instructions: 769230.7692307692, off_chip_rate: 0.7353, l1_to_l1_rate: 0.0, misclassification_rate: 0.0, reclassifications: 0 }";
    assert_eq!(run(LlcDesign::Ideal, &WorkloadSpec::dss_qry6()), golden);
    assert_eq!(
        run_replayed(LlcDesign::Ideal, &WorkloadSpec::dss_qry6()),
        golden
    );
    assert_eq!(
        run_forked(LlcDesign::Ideal, &WorkloadSpec::dss_qry6()),
        golden
    );
}

// ---- the second geometry: the same designs pinned at 64 cores --------------

#[test]
fn golden_private_oltp_db2_64c() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.0578802, l2: 1.2812394, off_chip: 2.0100822, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0050274, l2_instructions: 1.2105282, l2_shared_load: 0.0003528, l2_shared_coherence: 0.065331, off_chip_instructions: 0.1751526 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.3067, l1_to_l1_rate: 0.03015, misclassification_rate: 0.0, reclassifications: 0 }";
    let spec = at_64_cores(&WorkloadSpec::oltp_db2());
    assert_eq!(run(LlcDesign::Private, &spec), golden);
    assert_eq!(run_forked(LlcDesign::Private, &spec), golden);
}

#[test]
fn golden_asr_adaptive_oltp_db2_64c() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.0578802, l2: 1.3616021999999999, off_chip: 2.0100822, other: 0.13377, reclassification: 0.0 }, l2_private_data: 0.0050274, l2_instructions: 1.2909918, l2_shared_load: 0.0003528, l2_shared_coherence: 0.0652302, off_chip_instructions: 0.1751526 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.3067, l1_to_l1_rate: 0.03015, misclassification_rate: 0.0, reclassifications: 0 }";
    let spec = at_64_cores(&WorkloadSpec::oltp_db2());
    let design = LlcDesign::Asr {
        policy: AsrPolicy::Adaptive,
    };
    assert_eq!(run(design, &spec), golden);
    assert_eq!(run_forked(design, &spec), golden);
}

#[test]
fn golden_shared_em3d_64c() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.7, l1_to_l1: 0.0006424, l2: 0.0173558, off_chip: 1.8811078, other: 0.1327788, reclassification: 0.0 }, l2_private_data: 0.00020240000000000001, l2_instructions: 0.0156816, l2_shared_load: 0.0014718, l2_shared_coherence: 0.0, off_chip_instructions: 0.011657800000000001 }, accesses: 20000, instructions: 909090.9090909091, off_chip_rate: 0.549, l1_to_l1_rate: 0.00085, misclassification_rate: 0.0, reclassifications: 0 }";
    let spec = at_64_cores(&WorkloadSpec::em3d());
    assert_eq!(run(LlcDesign::Shared, &spec), golden);
    assert_eq!(run_forked(LlcDesign::Shared, &spec), golden);
}

#[test]
fn golden_rnuca_oltp_db2_64c() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 1.0, l1_to_l1: 0.0359226, l2: 0.1677648, off_chip: 3.3596052, other: 0.13377, reclassification: 0.054041399999999996 }, l2_private_data: 0.0050274, l2_instructions: 0.12957, l2_shared_load: 0.0331674, l2_shared_coherence: 0.0, off_chip_instructions: 1.6725029999999999 }, accesses: 20000, instructions: 476190.4761904762, off_chip_rate: 0.574, l1_to_l1_rate: 0.0286, misclassification_rate: 0.01185, reclassifications: 120 }";
    let spec = at_64_cores(&WorkloadSpec::oltp_db2());
    assert_eq!(run(LlcDesign::rnuca_default(), &spec), golden);
    assert_eq!(run_forked(LlcDesign::rnuca_default(), &spec), golden);
}

#[test]
fn golden_ideal_dss_qry6_64c() {
    let golden = "MeasuredRun { cpi: DetailedCpi { breakdown: CpiBreakdown { busy: 0.8, l1_to_l1: 0.0, l2: 0.0580944, off_chip: 2.4848486, other: 0.03822, reclassification: 0.0 }, l2_private_data: 0.0, l2_instructions: 0.057220799999999995, l2_shared_load: 0.0008736, l2_shared_coherence: 0.0, off_chip_instructions: 0.0298818 }, accesses: 20000, instructions: 769230.7692307692, off_chip_rate: 0.7354, l1_to_l1_rate: 0.0, misclassification_rate: 0.0, reclassifications: 0 }";
    let spec = at_64_cores(&WorkloadSpec::dss_qry6());
    assert_eq!(run(LlcDesign::Ideal, &spec), golden);
    assert_eq!(run_forked(LlcDesign::Ideal, &spec), golden);
}
