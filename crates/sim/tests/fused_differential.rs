//! Differential fused-fidelity suite: stepping a group of designs over one
//! shared trace pass must be indistinguishable — bit for bit — from running
//! each design independently over its own pass.
//!
//! For every geometry (16/32/64 cores) × three seeds, the suite runs the
//! full design matrix (including a static ASR variant that shares the
//! adaptive variant's checkpoint) twice: once fused
//! ([`run_fused_forked`], one shared cursor and batch buffer driving every
//! member) and once independently (fork the same memoized checkpoint, seat
//! a private replay cursor, `run_measured` alone). The paired
//! [`MeasuredRun`]s must be equal *and* render identical `Debug` strings —
//! `f64`'s `Debug` output is the shortest round-trippable decimal form, so
//! string equality is bit-identity on every CPI component and rate.
//!
//! The suite also pins the fusion economics: a fused pass consumes its
//! reference stream exactly once no matter how many designs ride it.

use rnuca_sim::{
    run_fused_forked, AsrPolicy, ExperimentConfig, LlcDesign, MeasuredRun, SnapshotArena,
};
use rnuca_types::config::ConfigPoint;
use rnuca_workloads::{TraceArena, WorkloadSpec};

const WARMUP: usize = 5_000;
const MEASURED: usize = 4_000;
const CORE_COUNTS: [usize; 3] = [16, 32, 64];
const SEEDS: [u64; 3] = [11, 20_260_727, 0x00C0_FFEE];

/// The five designs plus a static ASR variant, so a fused group carries two
/// members that fork from one shared checkpoint.
fn designs() -> Vec<LlcDesign> {
    vec![
        LlcDesign::Private,
        LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        },
        LlcDesign::Asr {
            policy: AsrPolicy::Static(0.25),
        },
        LlcDesign::Shared,
        LlcDesign::rnuca_default(),
        LlcDesign::Ideal,
    ]
}

fn geometries() -> Vec<WorkloadSpec> {
    CORE_COUNTS
        .iter()
        .map(|&cores| {
            let point = ConfigPoint {
                num_cores: Some(cores),
                ..ConfigPoint::default()
            };
            WorkloadSpec::oltp_db2()
                .at_config_point(&point)
                .expect("standard core counts are valid for the preset")
        })
        .collect()
}

fn cfg_for(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::smoke();
    cfg.warmup_refs = WARMUP;
    cfg.measured_refs = MEASURED;
    cfg.seed = seed;
    cfg
}

/// The independent leg: fork the same memoized checkpoint a fused member
/// would, seat a private replay cursor past the warm-up prefix, and measure
/// alone — one full pass over the stream per design.
fn independent_measure(
    design: LlcDesign,
    spec: &WorkloadSpec,
    seed: u64,
    traces: &TraceArena,
    snapshots: &SnapshotArena,
) -> MeasuredRun {
    let snap = snapshots.snapshot(traces, design, spec, seed, WARMUP, WARMUP + MEASURED);
    let mut sim = snap.fork(design, spec);
    let mut slice = traces.slice(spec, seed, WARMUP + MEASURED);
    slice.skip(WARMUP);
    sim.run_measured(&mut slice, MEASURED)
}

#[test]
fn fused_runs_are_byte_identical_to_independent_runs() {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let designs = designs();
    for spec in geometries() {
        for seed in SEEDS {
            let cfg = cfg_for(seed);
            let fused = run_fused_forked(&spec, &designs, &cfg, &traces, &snapshots);
            assert_eq!(fused.len(), designs.len(), "one run per member, in order");
            for (&design, fused_run) in designs.iter().zip(&fused) {
                let alone = independent_measure(design, &spec, seed, &traces, &snapshots);
                assert_eq!(
                    alone,
                    *fused_run,
                    "fused diverged from independent: {design} / {} cores / seed {seed}",
                    spec.num_cores()
                );
                assert_eq!(
                    format!("{alone:?}"),
                    format!("{fused_run:?}"),
                    "Debug digests diverged: {design} / {} cores / seed {seed}",
                    spec.num_cores()
                );
            }
        }
    }
    // Six designs, five warm-up classes: both legs of every comparison
    // forked the same memoized checkpoints, so nothing warmed twice and the
    // equality above really isolates the fused stepping.
    assert_eq!(snapshots.len(), CORE_COUNTS.len() * SEEDS.len() * 5);
    assert_eq!(snapshots.generations(), snapshots.len());
}

#[test]
fn a_fused_pass_consumes_its_stream_once() {
    let traces = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let spec = WorkloadSpec::em3d();
    let cfg = cfg_for(7);
    let runs = run_fused_forked(&spec, &designs(), &cfg, &traces, &snapshots);
    assert_eq!(runs.len(), 6);
    assert_eq!(
        traces.generations(),
        1,
        "six designs rode one materialization of the stream"
    );
    assert_eq!(traces.len(), 1, "the group resolves onto one trace key");
}
