//! Chaos differential: a sweep interrupted at an injected crash point and
//! then resumed from its journal must be indistinguishable — result for
//! result, warehouse byte for warehouse byte — from a sweep that never
//! crashed. And a panic injected into one scenario must quarantine exactly
//! that scenario while every other job completes with its usual result.
//!
//! Fail points are compiled in because this test depends on `rnuca-types`
//! with the `failpoints` feature (dev-dependencies only; release builds of
//! the library stay fault-free).

use rnuca_sim::{
    ExperimentConfig, ExperimentEngine, FailureCause, JournalError, ScenarioMatrix, SnapshotArena,
    SweepError,
};
use rnuca_types::failpoint::{self, FailAction, FailSpec};
use rnuca_types::RetryPolicy;
use rnuca_warehouse::Warehouse;
use rnuca_workloads::{TraceArena, WorkloadSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes the tests in this binary: a test's un-armed phases (baseline
/// runs, resumes) must not execute while another test has fail points armed
/// in the process-wide registry.
static SERIAL: Mutex<()> = Mutex::new(());

/// Four jobs in two fused groups: one workload at two core counts (two
/// reference streams) under the shared design and R-NUCA.
fn chaos_matrix() -> ScenarioMatrix {
    let mut cfg = ExperimentConfig::smoke();
    cfg.warmup_refs = 1_000;
    cfg.measured_refs = 800;
    let mut m = ScenarioMatrix::new(cfg);
    m.workloads = vec![WorkloadSpec::oltp_db2()];
    m.designs = vec![
        rnuca_sim::LlcDesign::Shared,
        rnuca_sim::LlcDesign::rnuca_default(),
    ];
    m.core_counts = vec![16, 32];
    m
}

fn journal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rnuca-chaos-{}-{tag}.journal", std::process::id()))
}

#[test]
fn interrupted_and_resumed_sweeps_are_bit_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let m = chaos_matrix();
    let engine = ExperimentEngine::with_workers(1);
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();

    // The ground truth: an uninterrupted journaled run and the exact bytes
    // of the warehouse it builds.
    let baseline_journal = journal_path("baseline");
    let baseline_store = Warehouse::new();
    let (baseline, summary, resumed) = m
        .run_forked_into_journaled(
            &engine,
            &arena,
            &snapshots,
            &baseline_journal,
            false,
            &baseline_store,
        )
        .expect("the chaos matrix is valid");
    let baseline_bytes = baseline_store.to_bytes();
    assert_eq!(summary.added, 4);
    assert_eq!((resumed.replayed, resumed.ran), (0, 4));

    // Crash the sweep at several injected points — seeded triggers on the
    // journal's append path, a fixed mid-run append failure, and a torn
    // half-written entry — then resume from the journal each time.
    let injections: Vec<(String, FailSpec)> = vec![
        (
            "seed-1".into(),
            FailSpec::seeded("sweep::journal::append", FailAction::Io, 1, 4),
        ),
        (
            "seed-2".into(),
            FailSpec::seeded("sweep::journal::append", FailAction::Io, 2, 4),
        ),
        (
            "seed-3".into(),
            FailSpec::seeded("sweep::journal::append", FailAction::Panic, 3, 4),
        ),
        (
            "append-2".into(),
            FailSpec::nth("sweep::journal::append", FailAction::Io, 2),
        ),
        (
            "torn-1".into(),
            FailSpec::nth("sweep::journal::torn", FailAction::Panic, 1),
        ),
        (
            "torn-3".into(),
            FailSpec::nth("sweep::journal::torn", FailAction::Panic, 3),
        ),
    ];
    for (tag, spec) in injections {
        let path = journal_path(&tag);
        {
            let _guard = failpoint::arm(std::slice::from_ref(&spec));
            let crashed = catch_unwind(AssertUnwindSafe(|| {
                m.run_forked_journaled(&engine, &arena, &snapshots, &path, false)
            }));
            assert!(
                crashed.is_err(),
                "{tag}: the injected fault must abort the sweep"
            );
        }
        let store = Warehouse::new();
        let (sweep, summary, resumed) = m
            .run_forked_into_journaled(&engine, &arena, &snapshots, &path, true, &store)
            .unwrap_or_else(|e| panic!("{tag}: resume failed: {e}"));
        assert_eq!(sweep, baseline, "{tag}: resumed results differ");
        assert_eq!(
            store.to_bytes(),
            baseline_bytes,
            "{tag}: resumed warehouse is not byte-identical"
        );
        assert_eq!(summary.added, 4, "{tag}");
        assert_eq!(resumed.replayed + resumed.ran, 4, "{tag}");
        assert!(
            resumed.ran > 0,
            "{tag}: the interrupted job itself must re-run"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_file(&baseline_journal).ok();
}

#[test]
fn resume_rejects_a_journal_from_a_different_sweep() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let m = chaos_matrix();
    let engine = ExperimentEngine::with_workers(2);
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let path = journal_path("mismatch");
    m.run_forked_journaled(&engine, &arena, &snapshots, &path, false)
        .expect("the chaos matrix is valid");

    // Any change to the matrix — here the seed — must invalidate the journal.
    let mut other = chaos_matrix();
    other.cfg.seed += 1;
    let err = other
        .run_forked_journaled(&engine, &arena, &snapshots, &path, true)
        .expect_err("a stale journal must be rejected, not silently mixed in");
    match err {
        SweepError::Journal(JournalError::FingerprintMismatch { found, expected }) => {
            assert_eq!(found, m.fingerprint());
            assert_eq!(expected, other.fingerprint());
        }
        other => panic!("expected a fingerprint mismatch, got: {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn an_injected_panic_quarantines_exactly_that_job() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let m = chaos_matrix();
    let engine = ExperimentEngine::with_workers(2);
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let baseline = m
        .run_forked(&engine, &arena, &snapshots)
        .expect("the chaos matrix is valid");

    // Job 0 is (OLTP DB2, shared, 16 cores); its member-measurement site
    // panics on every attempt, so group pass, solo re-run, and the retry
    // all fail — while its fused-group partner (job 1) must still complete.
    let site = "sim::member::OLTP DB2::shared::16c";
    let _guard = failpoint::arm(&[FailSpec::always(site, FailAction::Panic)]);
    let sweep = m
        .run_supervised_forked(&engine, &arena, &snapshots, 1)
        .expect("the chaos matrix is valid");
    assert_eq!(sweep.results.len(), 4);
    assert_eq!(sweep.completed(), 3);
    let failures = sweep.failures();
    assert_eq!(failures.len(), 1, "exactly the poisoned scenario fails");
    assert_eq!(failures[0].job, 0);
    assert_eq!(failures[0].attempts, 2, "one solo attempt plus one retry");
    assert!(failures[0].message.contains(site));
    for i in 1..4 {
        assert_eq!(
            sweep.results[i].as_ref().expect("healthy jobs complete"),
            &baseline.results[i],
            "job {i}: quarantine must not perturb healthy results"
        );
    }
}

#[test]
fn a_journaled_supervised_sweep_quarantines_and_resume_skips_the_failure() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let m = chaos_matrix();
    let engine = ExperimentEngine::with_workers(2);
    let arena = TraceArena::new();
    let snapshots = SnapshotArena::new();
    let path = journal_path("supervised");
    let policy = RetryPolicy::immediate(1);

    // First pass: job 0's member site panics on every attempt, so it ends
    // up quarantined — and journaled as a typed failure entry — while the
    // other three jobs complete and journal their runs.
    let store = Warehouse::new();
    let (sweep, summary, resumed) = {
        let site = "sim::member::OLTP DB2::shared::16c";
        let _guard = failpoint::arm(&[FailSpec::always(site, FailAction::Panic)]);
        m.run_supervised_into_journaled(&engine, &arena, &snapshots, &path, false, &policy, &store)
            .expect("a quarantined member must not abort the sweep")
    };
    assert_eq!((resumed.replayed, resumed.ran), (0, 4));
    assert_eq!(sweep.completed(), 3);
    let failures = sweep.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].job, 0);
    assert_eq!(failures[0].attempts, 2, "one solo attempt plus one retry");
    assert_eq!(failures[0].cause, FailureCause::Panic);
    assert_eq!(summary.added, 4, "three sweep rows plus one failed row");
    let json = sweep.to_json();
    assert!(json.contains("\"failures\": ["));
    assert!(json.contains("\"cause\": \"panic\""));

    // The failure surfaces as a queryable `kind=failed` row.
    let out = store
        .query("kind=failed show workload, design, failure")
        .expect("clean query");
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][0].to_string(), "OLTP DB2");
    assert_eq!(out.rows[0][1].to_string(), "S");
    let failure_text = out.rows[0][2].to_string();
    assert!(
        failure_text.starts_with("panic after 2 attempts:"),
        "failure column carries the typed summary, got: {failure_text}"
    );

    // Resume with the fail point disarmed: the quarantined job is *skipped*
    // (replayed as a failure, not re-run — even though it would now
    // succeed), and the rebuilt warehouse is byte-identical.
    let resumed_store = Warehouse::new();
    let (resumed_sweep, resumed_summary, resumed2) = m
        .run_supervised_into_journaled(
            &engine,
            &arena,
            &snapshots,
            &path,
            true,
            &policy,
            &resumed_store,
        )
        .expect("resume must succeed");
    assert_eq!(
        (resumed2.replayed, resumed2.ran),
        (4, 0),
        "every entry — including the failure — replays from the journal"
    );
    assert_eq!(resumed_sweep, sweep, "resume must not re-run the failure");
    assert_eq!(resumed_summary.added, 4);
    assert_eq!(
        resumed_store.to_bytes(),
        store.to_bytes(),
        "resumed warehouse is not byte-identical"
    );
    std::fs::remove_file(&path).ok();
}
