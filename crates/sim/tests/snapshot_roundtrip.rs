//! Property test: the snapshot codec is a faithful round trip.
//!
//! For random `(design, seed, warm-up length)` triples, serializing a
//! warmed simulator and restoring the bytes into a freshly constructed one
//! must reproduce the original field-for-field — [`CmpSimulator`]'s
//! `PartialEq` compares exactly the mutable state the codec carries (cache
//! slabs, directory, OS state, RNG, clock, counters), so equality here
//! means the codec forgot nothing warm-up can touch. Re-serializing the
//! restored simulator must also reproduce the original byte buffer, which
//! pins the encoding itself as canonical (no nondeterministic iteration
//! order leaks into the bytes).

use proptest::prelude::*;
use rnuca_sim::{AsrPolicy, CmpSimulator, LlcDesign};
use rnuca_workloads::{TraceArena, WorkloadSpec};

/// The six fork targets the arena serves: the five designs plus a static
/// ASR variant (same warm-up class as adaptive, different parameters).
fn design_from(idx: usize) -> LlcDesign {
    match idx {
        0 => LlcDesign::Private,
        1 => LlcDesign::Asr {
            policy: AsrPolicy::Adaptive,
        },
        2 => LlcDesign::Asr {
            policy: AsrPolicy::Static(0.75),
        },
        3 => LlcDesign::Shared,
        4 => LlcDesign::rnuca_default(),
        _ => LlcDesign::Ideal,
    }
}

proptest! {
    #[test]
    fn restore_of_serialize_is_identity(
        seed in 0u64..1_000_000_000,
        warmup in 0usize..1_500,
        design_idx in 0usize..6,
    ) {
        let design = design_from(design_idx);
        let spec = WorkloadSpec::em3d();
        let traces = TraceArena::new();
        let mut slice = traces.slice(&spec, seed, warmup.max(1));
        let mut warmed = CmpSimulator::with_seed(design, &spec, seed);
        warmed.run_warmup(&mut slice, warmup);

        let bytes = warmed.save_state();
        let mut restored = CmpSimulator::with_seed(design, &spec, seed);
        restored.load_state(&bytes);
        prop_assert!(
            restored == warmed,
            "restore(serialize(s)) != s for {design}, seed {seed}, warmup {warmup}"
        );
        prop_assert!(
            restored.save_state() == bytes,
            "re-serialization is not canonical for {design}, seed {seed}, warmup {warmup}"
        );
    }
}
