//! The network façade: latency queries and optional traffic recording.

use crate::message::{Message, MessageKind};
use crate::stats::TrafficStats;
use crate::topology::Topology;
use rnuca_types::config::NocConfig;
use rnuca_types::ids::TileId;
use rnuca_types::latency::Cycles;

/// An on-chip network instance: a topology plus the Table 1 link/router parameters.
///
/// The network is a *latency oracle* for the trace-driven simulator: it
/// answers "how many cycles does a message of this kind take from tile A to
/// tile B", and optionally records the traffic on each link for the topology
/// ablation study.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    config: NocConfig,
    stats: TrafficStats,
    record_traffic: bool,
}

impl Network {
    /// Creates a network with the given topology and parameters.
    pub fn new(topology: Topology, config: NocConfig) -> Self {
        Network {
            topology,
            config,
            stats: TrafficStats::new(topology, config.width, config.height),
            record_traffic: false,
        }
    }

    /// Enables per-link traffic recording (adds a route computation per message).
    pub fn with_traffic_recording(mut self) -> Self {
        self.record_traffic = true;
        self
    }

    /// The topology of this network.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The configuration of this network.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Hop count between two tiles.
    pub fn hops(&self, from: TileId, to: TileId) -> u32 {
        self.topology
            .hops(from, to, self.config.width, self.config.height)
    }

    /// One-way latency of a control message (head flit only) between two tiles.
    pub fn control_latency(&self, from: TileId, to: TileId) -> Cycles {
        self.one_way_latency(from, to, 8)
    }

    /// One-way latency of a data message carrying `block_bytes` of payload.
    pub fn data_latency(&self, from: TileId, to: TileId, block_bytes: usize) -> Cycles {
        self.one_way_latency(from, to, block_bytes + 8)
    }

    /// One-way latency for an arbitrary payload size.
    ///
    /// The head flit pays `hops * (link + router)`; the remaining flits of the
    /// payload stream behind it (wormhole routing), adding
    /// `ceil(payload / link_bytes) - 1` cycles of serialization.
    pub fn one_way_latency(&self, from: TileId, to: TileId, payload_bytes: usize) -> Cycles {
        let hops = self.hops(from, to);
        if hops == 0 {
            return Cycles::ZERO;
        }
        let head = self.config.hop_latency() * hops;
        let flits = payload_bytes.div_ceil(self.config.link_bytes).max(1) as u64;
        head + Cycles(flits - 1)
    }

    /// Round-trip latency of a request/response pair: a control request one way
    /// and a data response carrying a block on the way back.
    pub fn request_response_latency(&self, from: TileId, to: TileId, block_bytes: usize) -> Cycles {
        self.control_latency(from, to) + self.data_latency(to, from, block_bytes)
    }

    /// Records a message in the traffic statistics (if recording is enabled)
    /// and returns its one-way latency.
    pub fn send(&mut self, message: Message, block_bytes: usize) -> Cycles {
        let payload = message.kind.payload_bytes(block_bytes);
        if self.record_traffic {
            let route = self.topology.route(
                message.src,
                message.dst,
                self.config.width,
                self.config.height,
            );
            let flits = payload.div_ceil(self.config.link_bytes).max(1) as u64;
            self.stats.record_route(&route, flits);
        }
        self.one_way_latency(message.src, message.dst, payload)
    }

    /// Convenience wrapper for [`Network::send`] that builds the message in place.
    pub fn send_kind(
        &mut self,
        src: TileId,
        dst: TileId,
        kind: MessageKind,
        block: rnuca_types::addr::BlockAddr,
        block_bytes: usize,
    ) -> Cycles {
        self.send(Message::new(src, dst, kind, block), block_bytes)
    }

    /// The accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets the accumulated traffic statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new(self.topology, self.config.width, self.config.height);
    }

    /// Average network distance from `from` to every tile in `tiles`.
    pub fn average_hops_to(&self, from: TileId, tiles: &[TileId]) -> f64 {
        if tiles.is_empty() {
            return 0.0;
        }
        let total: u64 = tiles.iter().map(|&t| u64::from(self.hops(from, t))).sum();
        total as f64 / tiles.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnuca_types::addr::BlockAddr;
    use rnuca_types::config::SystemConfig;

    fn server_net() -> Network {
        Network::new(Topology::FoldedTorus, SystemConfig::server_16().torus)
    }

    #[test]
    fn zero_hop_latency_is_zero() {
        let net = server_net();
        assert_eq!(
            net.control_latency(TileId::new(3), TileId::new(3)),
            Cycles::ZERO
        );
    }

    #[test]
    fn control_latency_is_hops_times_three() {
        let net = server_net();
        // 1 hop = 1 link + 2 router = 3 cycles; control message fits in one flit.
        assert_eq!(
            net.control_latency(TileId::new(0), TileId::new(1)),
            Cycles(3)
        );
        // Tile 10 at (2,2) is the antipode of tile 0: 4 hops = 12 cycles.
        assert_eq!(
            net.control_latency(TileId::new(0), TileId::new(10)),
            Cycles(12)
        );
    }

    #[test]
    fn data_latency_adds_serialization() {
        let net = server_net();
        // 64B block + 8B header = 72B over 32B links = 3 flits -> +2 cycles.
        assert_eq!(
            net.data_latency(TileId::new(0), TileId::new(1), 64),
            Cycles(5)
        );
    }

    #[test]
    fn request_response_roundtrip() {
        let net = server_net();
        let rt = net.request_response_latency(TileId::new(0), TileId::new(2), 64);
        // 2 hops each way: request 6, response 6 + 2 serialization = 8; total 14.
        assert_eq!(rt, Cycles(14));
    }

    #[test]
    fn send_records_traffic_when_enabled() {
        let mut net = server_net().with_traffic_recording();
        let lat = net.send(
            Message::new(
                TileId::new(0),
                TileId::new(2),
                MessageKind::DataResponse,
                BlockAddr::from_block_number(1),
            ),
            64,
        );
        assert_eq!(lat, Cycles(8));
        assert_eq!(net.stats().messages(), 1);
        assert_eq!(net.stats().hops(), 2);
        net.reset_stats();
        assert_eq!(net.stats().messages(), 0);
    }

    #[test]
    fn send_without_recording_keeps_stats_empty() {
        let mut net = server_net();
        net.send_kind(
            TileId::new(0),
            TileId::new(5),
            MessageKind::ReadRequest,
            BlockAddr::from_block_number(9),
            64,
        );
        assert_eq!(net.stats().messages(), 0);
    }

    #[test]
    fn average_hops_to_a_cluster() {
        let net = server_net();
        let neighbours = [
            TileId::new(1),
            TileId::new(4),
            TileId::new(3),
            TileId::new(12),
        ];
        // All four listed tiles are one hop from tile 0 on the torus.
        assert!((net.average_hops_to(TileId::new(0), &neighbours) - 1.0).abs() < 1e-12);
        assert_eq!(net.average_hops_to(TileId::new(0), &[]), 0.0);
    }
}
