//! On-chip interconnection network model.
//!
//! The paper's tiled CMP connects tiles with a **2-D folded torus** (Table 1:
//! 32-byte links, 1-cycle link latency, 2-cycle routers; Section 5.1 argues
//! tori avoid the hot spots and edge effects of meshes). This crate provides:
//!
//! * [`Topology`] — torus or mesh over a `width x height` grid of tiles,
//! * shortest-path hop distances and deterministic dimension-order routes,
//! * a latency model (`hops * (link + router)` plus payload serialization),
//! * [`TrafficStats`] — per-link utilisation counters used by the
//!   topology-ablation benchmark.
//!
//! # Example
//!
//! ```
//! use rnuca_noc::{Network, Topology};
//! use rnuca_types::config::SystemConfig;
//! use rnuca_types::ids::TileId;
//!
//! let cfg = SystemConfig::server_16();
//! let net = Network::new(Topology::FoldedTorus, cfg.torus);
//! // On a 4x4 torus the antipode of tile 0 is tile 10 at (2,2): 2 hops per axis.
//! assert_eq!(net.hops(TileId::new(0), TileId::new(10)), 4);
//! // Wraparound makes the geometric corner tile 15 only 2 hops away.
//! assert_eq!(net.hops(TileId::new(0), TileId::new(15)), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod message;
pub mod network;
pub mod stats;
pub mod topology;

pub use message::{Message, MessageKind};
pub use network::Network;
pub use stats::TrafficStats;
pub use topology::Topology;
