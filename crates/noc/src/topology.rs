//! Grid topologies: 2-D folded torus (the paper's choice) and 2-D mesh (ablation).

use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The interconnect topology connecting the tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// 2-D folded torus: every row and column wraps around, so the distance
    /// along an axis of length `n` is at most `n / 2`. This is the topology
    /// evaluated in the paper.
    FoldedTorus,
    /// 2-D mesh without wraparound links. Kept for the topology ablation
    /// (meshes penalize edge tiles and create a hot centre).
    Mesh,
}

impl Topology {
    /// Distance between two coordinates along one axis of length `len`.
    fn axis_distance(self, a: usize, b: usize, len: usize) -> usize {
        let direct = a.abs_diff(b);
        match self {
            Topology::Mesh => direct,
            Topology::FoldedTorus => direct.min(len - direct),
        }
    }

    /// Minimal hop count between two tiles on a `width x height` grid.
    ///
    /// Uses dimension-order (X then Y) routing; for both topologies the
    /// dimension-ordered path is also a shortest path.
    pub fn hops(self, from: TileId, to: TileId, width: usize, height: usize) -> u32 {
        let (fx, fy) = from.coords(width);
        let (tx, ty) = to.coords(width);
        (self.axis_distance(fx, tx, width) + self.axis_distance(fy, ty, height)) as u32
    }

    /// The sequence of tiles visited by a dimension-order route from `from` to
    /// `to` (inclusive of both endpoints).
    ///
    /// Used by the traffic-statistics model to attribute link utilisation.
    pub fn route(self, from: TileId, to: TileId, width: usize, height: usize) -> Vec<TileId> {
        let (mut x, mut y) = from.coords(width);
        let (tx, ty) = to.coords(width);
        let mut path = vec![from];
        while x != tx {
            x = self.step_towards(x, tx, width);
            path.push(TileId::from_coords(x, y, width));
        }
        while y != ty {
            y = self.step_towards(y, ty, height);
            path.push(TileId::from_coords(x, y, width));
        }
        path
    }

    /// Moves one step from `cur` towards `target` along an axis of length `len`,
    /// honouring wraparound for the torus.
    fn step_towards(self, cur: usize, target: usize, len: usize) -> usize {
        if cur == target {
            return cur;
        }
        let forward = (target + len - cur) % len; // steps going "up" with wraparound
        let backward = (cur + len - target) % len; // steps going "down" with wraparound
        let go_forward = match self {
            Topology::Mesh => target > cur,
            Topology::FoldedTorus => forward <= backward,
        };
        if go_forward {
            (cur + 1) % len
        } else {
            (cur + len - 1) % len
        }
    }

    /// Number of dense link indices on a `width x height` grid: four
    /// outgoing directions (+x, -x, +y, -y) per tile. Mesh edges simply
    /// leave their wraparound slots unused.
    pub fn num_links(width: usize, height: usize) -> usize {
        width * height * 4
    }

    /// Dense index of the directed link from `from` to the adjacent tile
    /// `to`: `from * 4 + direction`. Both topologies use the same scheme, so
    /// per-link counters can live in a flat array instead of a hash map.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not one hop from `from` on this topology.
    pub fn link_index(self, from: TileId, to: TileId, width: usize, height: usize) -> usize {
        let (fx, fy) = from.coords(width);
        let (tx, ty) = to.coords(width);
        let dir = if ty == fy && tx == (fx + 1) % width {
            0 // +x (east, possibly wrapping)
        } else if ty == fy && tx == (fx + width - 1) % width {
            1 // -x
        } else if tx == fx && ty == (fy + 1) % height {
            2 // +y
        } else if tx == fx && ty == (fy + height - 1) % height {
            3 // -y
        } else {
            panic!("{from} -> {to} is not a single hop on a {width}x{height} grid");
        };
        from.index() * 4 + dir
    }

    /// Inverse of [`Topology::link_index`]: the `(from, to)` tile pair of a
    /// dense link index.
    pub fn link_from_index(self, index: usize, width: usize, height: usize) -> (TileId, TileId) {
        let from = TileId::new(index / 4);
        let (fx, fy) = from.coords(width);
        let (tx, ty) = match index % 4 {
            0 => ((fx + 1) % width, fy),
            1 => ((fx + width - 1) % width, fy),
            2 => (fx, (fy + 1) % height),
            _ => (fx, (fy + height - 1) % height),
        };
        (from, TileId::from_coords(tx, ty, width))
    }

    /// Maximum shortest-path distance between any pair of tiles (the network diameter).
    pub fn diameter(self, width: usize, height: usize) -> u32 {
        match self {
            Topology::Mesh => (width - 1 + height - 1) as u32,
            Topology::FoldedTorus => (width / 2 + height / 2) as u32,
        }
    }

    /// Average shortest-path distance over all ordered pairs of distinct tiles.
    pub fn average_distance(self, width: usize, height: usize) -> f64 {
        let n = width * height;
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                total += u64::from(self.hops(TileId::new(a), TileId::new(b), width, height));
                pairs += 1;
            }
        }
        total as f64 / pairs as f64
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::FoldedTorus => f.write_str("2-D folded torus"),
            Topology::Mesh => f.write_str("2-D mesh"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 4;
    const H: usize = 4;

    #[test]
    fn torus_wraps_around() {
        let t = Topology::FoldedTorus;
        // Tiles 0 (0,0) and 3 (3,0) are adjacent via the wraparound link.
        assert_eq!(t.hops(TileId::new(0), TileId::new(3), W, H), 1);
        // Tiles 0 (0,0) and 12 (0,3) likewise.
        assert_eq!(t.hops(TileId::new(0), TileId::new(12), W, H), 1);
        // The geometric "corner" tile 15 at (3,3) is only 1+1 hops away thanks to wraparound...
        assert_eq!(t.hops(TileId::new(0), TileId::new(15), W, H), 2);
        // ...and the true antipode of tile 0 is tile 10 at (2,2), at the 4-hop diameter.
        assert_eq!(t.hops(TileId::new(0), TileId::new(10), W, H), 4);
        // Self distance is zero.
        assert_eq!(t.hops(TileId::new(5), TileId::new(5), W, H), 0);
    }

    #[test]
    fn mesh_does_not_wrap() {
        let m = Topology::Mesh;
        assert_eq!(m.hops(TileId::new(0), TileId::new(3), W, H), 3);
        assert_eq!(m.hops(TileId::new(0), TileId::new(15), W, H), 6);
        assert_eq!(m.hops(TileId::new(5), TileId::new(6), W, H), 1);
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::FoldedTorus.diameter(4, 4), 4);
        assert_eq!(Topology::Mesh.diameter(4, 4), 6);
        assert_eq!(Topology::FoldedTorus.diameter(4, 2), 3);
        assert_eq!(Topology::Mesh.diameter(4, 2), 4);
    }

    #[test]
    fn torus_average_distance_is_lower_than_mesh() {
        let torus = Topology::FoldedTorus.average_distance(4, 4);
        let mesh = Topology::Mesh.average_distance(4, 4);
        assert!(torus < mesh, "torus {torus} should beat mesh {mesh}");
        // Analytic value for a 4x4 torus: E[d] per axis = (0+1+2+1)/4 = 1, two axes
        // but excluding the self-pair slightly raises it: 32/15 ≈ 2.133.
        assert!((torus - 32.0 / 15.0).abs() < 1e-9);
    }

    #[test]
    fn routes_have_hop_count_edges_and_correct_endpoints() {
        for &topo in &[Topology::FoldedTorus, Topology::Mesh] {
            for a in 0..16 {
                for b in 0..16 {
                    let from = TileId::new(a);
                    let to = TileId::new(b);
                    let route = topo.route(from, to, W, H);
                    assert_eq!(route.first().copied(), Some(from));
                    assert_eq!(route.last().copied(), Some(to));
                    assert_eq!(
                        route.len() as u32 - 1,
                        topo.hops(from, to, W, H),
                        "{topo} {a}->{b}"
                    );
                    // Each step moves exactly one hop.
                    for pair in route.windows(2) {
                        assert_eq!(topo.hops(pair[0], pair[1], W, H), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn link_indices_are_dense_and_roundtrip() {
        for &topo in &[Topology::FoldedTorus, Topology::Mesh] {
            // Every hop of every route maps to a unique in-range index that
            // round-trips back to the same (from, to) pair.
            for a in 0..16 {
                for b in 0..16 {
                    let route = topo.route(TileId::new(a), TileId::new(b), W, H);
                    for pair in route.windows(2) {
                        let idx = topo.link_index(pair[0], pair[1], W, H);
                        assert!(idx < Topology::num_links(W, H));
                        assert_eq!(
                            topo.link_from_index(idx, W, H),
                            (pair[0], pair[1]),
                            "{topo} link {} -> {}",
                            pair[0],
                            pair[1]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_adjacent_pairs_get_distinct_link_indices() {
        let topo = Topology::FoldedTorus;
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            let from = TileId::new(i);
            for j in 0..16 {
                let to = TileId::new(j);
                if i != j && topo.hops(from, to, W, H) == 1 {
                    assert!(
                        seen.insert(topo.link_index(from, to, W, H)),
                        "link {from} -> {to} collides"
                    );
                }
            }
        }
        // A 4x4 torus has 4 outgoing links per tile, all distinct.
        assert_eq!(seen.len(), Topology::num_links(W, H));
    }

    #[test]
    #[should_panic(expected = "not a single hop")]
    fn non_adjacent_link_index_panics() {
        Topology::Mesh.link_index(TileId::new(0), TileId::new(5), W, H);
    }

    #[test]
    fn distances_are_symmetric() {
        for &topo in &[Topology::FoldedTorus, Topology::Mesh] {
            for a in 0..16 {
                for b in 0..16 {
                    assert_eq!(
                        topo.hops(TileId::new(a), TileId::new(b), W, H),
                        topo.hops(TileId::new(b), TileId::new(a), W, H)
                    );
                }
            }
        }
    }

    #[test]
    fn rectangular_grid_4x2() {
        let t = Topology::FoldedTorus;
        // 4x2 torus used by the 8-core desktop configuration.
        assert_eq!(t.hops(TileId::new(0), TileId::new(7), 4, 2), 2);
        assert_eq!(t.hops(TileId::new(0), TileId::new(4), 4, 2), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(Topology::FoldedTorus.to_string(), "2-D folded torus");
        assert_eq!(Topology::Mesh.to_string(), "2-D mesh");
    }
}
