//! Network message vocabulary: request/response kinds and payload sizes.
//!
//! The timing model charges a serialization latency for data-carrying
//! messages: a 64-byte cache block crossing 32-byte links takes two extra
//! flit cycles beyond the head flit.

use rnuca_types::addr::BlockAddr;
use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a network message exchanged between tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// A read/fetch request for a block (control-sized).
    ReadRequest,
    /// A write/upgrade request for a block (control-sized).
    WriteRequest,
    /// A data response carrying a full cache block.
    DataResponse,
    /// A coherence invalidation (control-sized).
    Invalidate,
    /// An acknowledgement (control-sized).
    Ack,
    /// A request forwarded by a directory to a remote owner (control-sized).
    Forward,
    /// A writeback carrying a full cache block to its home slice or memory.
    Writeback,
}

impl MessageKind {
    /// Payload size in bytes: data-carrying messages carry a 64-byte block plus
    /// an 8-byte header; control messages are 8 bytes.
    pub fn payload_bytes(self, block_bytes: usize) -> usize {
        match self {
            MessageKind::DataResponse | MessageKind::Writeback => block_bytes + 8,
            _ => 8,
        }
    }

    /// Returns `true` if the message carries a full data block.
    pub fn carries_data(self) -> bool {
        matches!(self, MessageKind::DataResponse | MessageKind::Writeback)
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::ReadRequest => "read-req",
            MessageKind::WriteRequest => "write-req",
            MessageKind::DataResponse => "data-resp",
            MessageKind::Invalidate => "inval",
            MessageKind::Ack => "ack",
            MessageKind::Forward => "forward",
            MessageKind::Writeback => "writeback",
        };
        f.write_str(s)
    }
}

/// A single message travelling between two tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Originating tile.
    pub src: TileId,
    /// Destination tile.
    pub dst: TileId,
    /// Message kind.
    pub kind: MessageKind,
    /// The block this message concerns.
    pub block: BlockAddr,
}

impl Message {
    /// Convenience constructor.
    pub fn new(src: TileId, dst: TileId, kind: MessageKind, block: BlockAddr) -> Self {
        Message {
            src,
            dst,
            kind,
            block,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} {} {}",
            self.src, self.dst, self.kind, self.block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(MessageKind::ReadRequest.payload_bytes(64), 8);
        assert_eq!(MessageKind::DataResponse.payload_bytes(64), 72);
        assert_eq!(MessageKind::Writeback.payload_bytes(64), 72);
        assert_eq!(MessageKind::Invalidate.payload_bytes(64), 8);
    }

    #[test]
    fn carries_data_flag() {
        assert!(MessageKind::DataResponse.carries_data());
        assert!(MessageKind::Writeback.carries_data());
        assert!(!MessageKind::Ack.carries_data());
        assert!(!MessageKind::Forward.carries_data());
    }

    #[test]
    fn message_display() {
        let m = Message::new(
            TileId::new(1),
            TileId::new(2),
            MessageKind::ReadRequest,
            BlockAddr::from_block_number(0x10),
        );
        assert!(m.to_string().contains("T1 -> T2"));
        assert!(m.to_string().contains("read-req"));
    }
}
