//! Per-link traffic accounting.
//!
//! The paper argues for a torus because a mesh concentrates traffic in its
//! centre. [`TrafficStats`] records how many flits cross each directed link so
//! the topology ablation can measure exactly that: maximum link load, total
//! flits, and the load imbalance ratio.
//!
//! Counters live in a flat `Vec` indexed by [`Topology::link_index`] — the
//! dense per-tile/per-direction link id — so the per-hop recording path is an
//! array increment instead of a hash-map entry probe.

use crate::topology::Topology;
use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};

/// Directed link between two adjacent tiles.
pub type Link = (TileId, TileId);

/// Accumulated traffic counters for a network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficStats {
    topology: Topology,
    width: usize,
    height: usize,
    /// Flits carried per directed link, indexed by [`Topology::link_index`].
    flits_per_link: Vec<u64>,
    total_messages: u64,
    total_flits: u64,
    total_hops: u64,
}

impl TrafficStats {
    /// Creates an empty set of counters for a `width x height` grid.
    pub fn new(topology: Topology, width: usize, height: usize) -> Self {
        TrafficStats {
            topology,
            width,
            height,
            flits_per_link: vec![0; Topology::num_links(width, height)],
            total_messages: 0,
            total_flits: 0,
            total_hops: 0,
        }
    }

    /// Records one message that followed `route` (a sequence of tiles) and
    /// occupied `flits` flits on each link it crossed.
    pub fn record_route(&mut self, route: &[TileId], flits: u64) {
        self.total_messages += 1;
        for pair in route.windows(2) {
            let idx = self
                .topology
                .link_index(pair[0], pair[1], self.width, self.height);
            self.flits_per_link[idx] += flits;
            self.total_flits += flits;
            self.total_hops += 1;
        }
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.total_messages
    }

    /// Total flit-hops recorded (flits summed over every link crossing).
    pub fn flit_hops(&self) -> u64 {
        self.total_flits
    }

    /// Total hops recorded across all messages.
    pub fn hops(&self) -> u64 {
        self.total_hops
    }

    /// Average hops per message (zero if no messages were recorded).
    pub fn average_hops(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.total_messages as f64
        }
    }

    /// Iterates over the links that carried traffic and their flit counts.
    fn active(&self) -> impl Iterator<Item = (Link, u64)> + '_ {
        self.flits_per_link
            .iter()
            .enumerate()
            .filter(|(_, &flits)| flits > 0)
            .map(|(idx, &flits)| {
                (
                    self.topology.link_from_index(idx, self.width, self.height),
                    flits,
                )
            })
    }

    /// The most heavily loaded directed link and its flit count, if any traffic was recorded.
    pub fn hottest_link(&self) -> Option<(Link, u64)> {
        self.active()
            .max_by_key(|&(link, flits)| (flits, link.0.index(), link.1.index()))
    }

    /// Ratio of the hottest link's load to the mean link load over the links
    /// that carried traffic (1.0 = perfectly balanced).
    ///
    /// Returns `None` when no traffic has been recorded.
    pub fn imbalance(&self) -> Option<f64> {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut count = 0usize;
        for &flits in &self.flits_per_link {
            if flits > 0 {
                max = max.max(flits);
                sum += flits;
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        Some(max as f64 / (sum as f64 / count as f64))
    }

    /// Number of distinct directed links that carried any traffic.
    pub fn active_links(&self) -> usize {
        self.flits_per_link.iter().filter(|&&f| f > 0).count()
    }

    /// Merges another set of counters into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two sets were recorded on different grids or topologies.
    pub fn merge(&mut self, other: &TrafficStats) {
        assert!(
            self.topology == other.topology
                && self.width == other.width
                && self.height == other.height,
            "cannot merge traffic stats recorded on different networks"
        );
        for (mine, theirs) in self.flits_per_link.iter_mut().zip(&other.flits_per_link) {
            *mine += theirs;
        }
        self.total_messages += other.total_messages;
        self.total_flits += other.total_flits;
        self.total_hops += other.total_hops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TileId {
        TileId::new(i)
    }

    fn stats() -> TrafficStats {
        TrafficStats::new(Topology::FoldedTorus, 4, 4)
    }

    #[test]
    fn empty_stats() {
        let s = stats();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.average_hops(), 0.0);
        assert!(s.hottest_link().is_none());
        assert!(s.imbalance().is_none());
    }

    #[test]
    fn record_single_route() {
        let mut s = stats();
        s.record_route(&[t(0), t(1), t(2)], 3);
        assert_eq!(s.messages(), 1);
        assert_eq!(s.hops(), 2);
        assert_eq!(s.flit_hops(), 6);
        assert_eq!(s.average_hops(), 2.0);
        assert_eq!(s.active_links(), 2);
    }

    #[test]
    fn hottest_link_and_imbalance() {
        let mut s = stats();
        s.record_route(&[t(0), t(1)], 1);
        s.record_route(&[t(0), t(1)], 1);
        s.record_route(&[t(2), t(3)], 1);
        let (link, flits) = s.hottest_link().unwrap();
        assert_eq!(link, (t(0), t(1)));
        assert_eq!(flits, 2);
        // max = 2, mean = 1.5 -> imbalance = 4/3.
        assert!((s.imbalance().unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_hop_route_counts_message_only() {
        let mut s = stats();
        s.record_route(&[t(5)], 4);
        assert_eq!(s.messages(), 1);
        assert_eq!(s.hops(), 0);
        assert_eq!(s.flit_hops(), 0);
    }

    #[test]
    fn wraparound_hops_use_distinct_link_slots() {
        let mut s = stats();
        // 0 -> 3 is a -x wraparound hop on the 4x4 torus; 0 -> 1 is +x.
        s.record_route(&[t(0), t(3)], 1);
        s.record_route(&[t(0), t(1)], 1);
        assert_eq!(s.active_links(), 2);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = stats();
        a.record_route(&[t(0), t(1)], 1);
        let mut b = stats();
        b.record_route(&[t(0), t(1), t(2)], 2);
        a.merge(&b);
        assert_eq!(a.messages(), 2);
        assert_eq!(a.hops(), 3);
        assert_eq!(a.flit_hops(), 5);
        assert_eq!(a.active_links(), 2);
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn merging_different_grids_panics() {
        let mut a = stats();
        let b = TrafficStats::new(Topology::FoldedTorus, 4, 2);
        a.merge(&b);
    }
}
