//! Per-link traffic accounting.
//!
//! The paper argues for a torus because a mesh concentrates traffic in its
//! centre. [`TrafficStats`] records how many flits cross each directed link so
//! the topology ablation can measure exactly that: maximum link load, total
//! flits, and the load imbalance ratio.

use rnuca_types::ids::TileId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Directed link between two adjacent tiles.
pub type Link = (TileId, TileId);

/// Accumulated traffic counters for a network.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    flits_per_link: HashMap<Link, u64>,
    total_messages: u64,
    total_flits: u64,
    total_hops: u64,
}

impl TrafficStats {
    /// Creates an empty set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message that followed `route` (a sequence of tiles) and
    /// occupied `flits` flits on each link it crossed.
    pub fn record_route(&mut self, route: &[TileId], flits: u64) {
        self.total_messages += 1;
        for pair in route.windows(2) {
            *self.flits_per_link.entry((pair[0], pair[1])).or_insert(0) += flits;
            self.total_flits += flits;
            self.total_hops += 1;
        }
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.total_messages
    }

    /// Total flit-hops recorded (flits summed over every link crossing).
    pub fn flit_hops(&self) -> u64 {
        self.total_flits
    }

    /// Total hops recorded across all messages.
    pub fn hops(&self) -> u64 {
        self.total_hops
    }

    /// Average hops per message (zero if no messages were recorded).
    pub fn average_hops(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.total_messages as f64
        }
    }

    /// The most heavily loaded directed link and its flit count, if any traffic was recorded.
    pub fn hottest_link(&self) -> Option<(Link, u64)> {
        self.flits_per_link
            .iter()
            .max_by_key(|(link, &flits)| (flits, link.0.index(), link.1.index()))
            .map(|(&link, &flits)| (link, flits))
    }

    /// Ratio of the hottest link's load to the mean link load (1.0 = perfectly balanced).
    ///
    /// Returns `None` when no traffic has been recorded.
    pub fn imbalance(&self) -> Option<f64> {
        if self.flits_per_link.is_empty() {
            return None;
        }
        let max = self.flits_per_link.values().copied().max().unwrap_or(0) as f64;
        let mean = self.flits_per_link.values().copied().sum::<u64>() as f64
            / self.flits_per_link.len() as f64;
        if mean == 0.0 {
            None
        } else {
            Some(max / mean)
        }
    }

    /// Number of distinct directed links that carried any traffic.
    pub fn active_links(&self) -> usize {
        self.flits_per_link.len()
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (&link, &flits) in &other.flits_per_link {
            *self.flits_per_link.entry(link).or_insert(0) += flits;
        }
        self.total_messages += other.total_messages;
        self.total_flits += other.total_flits;
        self.total_hops += other.total_hops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TileId {
        TileId::new(i)
    }

    #[test]
    fn empty_stats() {
        let s = TrafficStats::new();
        assert_eq!(s.messages(), 0);
        assert_eq!(s.average_hops(), 0.0);
        assert!(s.hottest_link().is_none());
        assert!(s.imbalance().is_none());
    }

    #[test]
    fn record_single_route() {
        let mut s = TrafficStats::new();
        s.record_route(&[t(0), t(1), t(2)], 3);
        assert_eq!(s.messages(), 1);
        assert_eq!(s.hops(), 2);
        assert_eq!(s.flit_hops(), 6);
        assert_eq!(s.average_hops(), 2.0);
        assert_eq!(s.active_links(), 2);
    }

    #[test]
    fn hottest_link_and_imbalance() {
        let mut s = TrafficStats::new();
        s.record_route(&[t(0), t(1)], 1);
        s.record_route(&[t(0), t(1)], 1);
        s.record_route(&[t(2), t(3)], 1);
        let (link, flits) = s.hottest_link().unwrap();
        assert_eq!(link, (t(0), t(1)));
        assert_eq!(flits, 2);
        // max = 2, mean = 1.5 -> imbalance = 4/3.
        assert!((s.imbalance().unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_hop_route_counts_message_only() {
        let mut s = TrafficStats::new();
        s.record_route(&[t(5)], 4);
        assert_eq!(s.messages(), 1);
        assert_eq!(s.hops(), 0);
        assert_eq!(s.flit_hops(), 0);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = TrafficStats::new();
        a.record_route(&[t(0), t(1)], 1);
        let mut b = TrafficStats::new();
        b.record_route(&[t(0), t(1), t(2)], 2);
        a.merge(&b);
        assert_eq!(a.messages(), 2);
        assert_eq!(a.hops(), 3);
        assert_eq!(a.flit_hops(), 5);
        assert_eq!(a.active_links(), 2);
    }
}
