//! Property-based tests of the interconnect model.

use proptest::prelude::*;
use rnuca_noc::{Network, Topology};
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::TileId;

proptest! {
    /// Routes always have exactly `hops` edges, on both topologies and both
    /// grid shapes used in the paper (4x4 and 4x2).
    #[test]
    fn route_length_equals_hop_count(
        from in 0usize..16,
        to in 0usize..16,
        torus in any::<bool>(),
        desktop in any::<bool>(),
    ) {
        let (w, h) = if desktop { (4usize, 2usize) } else { (4, 4) };
        let from = TileId::new(from % (w * h));
        let to = TileId::new(to % (w * h));
        let topo = if torus { Topology::FoldedTorus } else { Topology::Mesh };
        let route = topo.route(from, to, w, h);
        prop_assert_eq!(route.len() as u32 - 1, topo.hops(from, to, w, h));
        prop_assert_eq!(route[0], from);
        prop_assert_eq!(*route.last().unwrap(), to);
        // Every step in the route is between adjacent tiles.
        for pair in route.windows(2) {
            prop_assert_eq!(topo.hops(pair[0], pair[1], w, h), 1);
        }
    }

    /// Torus distances never exceed mesh distances, and both respect the
    /// triangle inequality.
    #[test]
    fn torus_never_longer_than_mesh_and_triangle_inequality(
        a in 0usize..16,
        b in 0usize..16,
        c in 0usize..16,
    ) {
        let (a, b, c) = (TileId::new(a), TileId::new(b), TileId::new(c));
        let torus = Topology::FoldedTorus;
        let mesh = Topology::Mesh;
        prop_assert!(torus.hops(a, b, 4, 4) <= mesh.hops(a, b, 4, 4));
        prop_assert!(torus.hops(a, c, 4, 4) <= torus.hops(a, b, 4, 4) + torus.hops(b, c, 4, 4));
        prop_assert!(mesh.hops(a, c, 4, 4) <= mesh.hops(a, b, 4, 4) + mesh.hops(b, c, 4, 4));
    }

    /// One-way latency grows monotonically with payload size and is zero only
    /// for the zero-hop case.
    #[test]
    fn latency_monotonic_in_payload(from in 0usize..16, to in 0usize..16, payload in 1usize..512) {
        let net = Network::new(Topology::FoldedTorus, SystemConfig::server_16().torus);
        let (from, to) = (TileId::new(from), TileId::new(to));
        let small = net.one_way_latency(from, to, payload);
        let large = net.one_way_latency(from, to, payload + 32);
        prop_assert!(large >= small);
        if from == to {
            prop_assert_eq!(small.value(), 0);
        } else {
            prop_assert!(small.value() > 0);
        }
    }
}
