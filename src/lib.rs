//! Workspace facade for the R-NUCA reproduction.
//!
//! This crate re-exports the individual crates of the workspace so the
//! examples and cross-crate integration tests can use a single dependency.
//! Library users should depend directly on the crate they need:
//!
//! * [`rnuca`] — the placement policy (clusters, rotational interleaving).
//! * [`rnuca_sim`] — the tiled-CMP simulator and experiment runner.
//! * [`rnuca_workloads`] — synthetic workload models and trace characterization.
//! * [`rnuca_types`], [`rnuca_noc`], [`rnuca_cache`], [`rnuca_coherence`],
//!   [`rnuca_mem`], [`rnuca_os`] — the substrates.

#![warn(missing_docs)]

pub use rnuca;
pub use rnuca_cache;
pub use rnuca_coherence;
pub use rnuca_mem;
pub use rnuca_noc;
pub use rnuca_os;
pub use rnuca_sim;
pub use rnuca_types;
pub use rnuca_workloads;
