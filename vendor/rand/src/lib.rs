//! Offline stand-in for `rand` (0.8 API surface).
//!
//! The build container has no network access, so the real `rand` crate
//! cannot be fetched from crates.io. This crate implements exactly the API
//! the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_bool`, and `gen_range` — on top
//! of a SplitMix64 generator. SplitMix64 passes BigCrush and is more than
//! adequate for driving synthetic workload generation; it is *not* the
//! ChaCha-based generator real `rand` uses, so streams differ from upstream
//! (they are still fully deterministic per seed, which is what the simulator
//! relies on).

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution of a generator
/// (what `rng.gen::<T>()` produces).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution (`f64` is
    /// uniform in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`. Panics if `p` is outside
    /// `[0, 1]`, matching real rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p={p} is outside [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Draws an integer uniformly from the half-open `range`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic per seed, 2^64 period, passes BigCrush. Not
    /// cryptographically secure (neither is simulation seeding).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The generator's current internal state. Feeding it back through
        /// [`super::SeedableRng::seed_from_u64`] reconstructs a generator
        /// that continues the exact same stream — the hook simulator
        /// checkpoints use to save and restore RNG position.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
