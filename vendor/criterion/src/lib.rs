//! Offline stand-in for `criterion`.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This crate keeps the same bench-author surface the workspace
//! uses — [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — but replaces
//! the statistical machinery with a simple bounded wall-clock loop: each
//! benchmark warms up once, then runs until ~200 ms or 50 iterations have
//! elapsed, and reports the mean time per iteration. There are no HTML
//! reports, no outlier analysis, and CLI arguments from `cargo bench` are
//! ignored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id carrying both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; its [`iter`](Bencher::iter) method times
/// the routine.
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then a bounded measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < 50 && started.elapsed() < budget {
            std_black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = started.elapsed() / self.iters as u32;
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    println!(
        "bench: {name:<50} {:>12.3} ms/iter ({} iters)",
        bencher.mean.as_secs_f64() * 1e3,
        bencher.iters,
    );
}

/// A named set of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's loop is bounded by
    /// wall-clock time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` against a borrowed `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Benchmarks a routine that needs no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Benchmarks a standalone routine.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self.benchmarks_run += 1;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the closing tally; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("bench: {} benchmark(s) complete", self.benchmarks_run);
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`), mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
