//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no network access, so the real
//! serde cannot be fetched. No code in the workspace performs actual
//! serialization (there is no `serde_json`-style consumer); the
//! `#[derive(Serialize, Deserialize)]` annotations document intent and keep
//! the types ready for the real dependency. This crate provides the two
//! marker traits and re-exports the no-op derives under the same names, so
//! `use serde::{Deserialize, Serialize};` imports both the trait and the
//! derive macro exactly as with real serde.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
