//! Offline stand-in for the `bytes` crate.
//!
//! Built for a network-isolated container where the real crate cannot be
//! fetched. Provides [`Bytes`], [`BytesMut`], and the subset of the
//! [`Buf`]/[`BufMut`] traits the trace codec in `rnuca-workloads` uses.
//! Integers are big-endian on the wire, matching the real crate's
//! `get_u32`/`put_u32` family. The cheap-clone `Arc` machinery of the real
//! `Bytes` is replaced by plain `Vec` storage: `slice` copies instead of
//! sharing, which is fine at trace-file sizes.

#![warn(missing_docs)]

use std::ops::Range;

/// Read side: a cursor over a byte buffer, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`, advancing the cursor.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`, advancing the cursor.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`, advancing the cursor.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Write side: an append-only byte sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable view over a byte buffer.
///
/// As in the real crate, [`Buf::advance`] shrinks the view: `len`, `slice`,
/// and `as_ref` are all relative to the bytes not yet consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    start: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            start: 0,
        }
    }

    /// Length of the current view.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out a sub-range of the view as a fresh buffer (the real crate
    /// shares storage here; this stand-in copies).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.as_ref()[range].to_vec(),
            start: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, start: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            start: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(15);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        let mut b = buf.freeze();
        assert_eq!(b.len(), 15);
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 0xAB);
        // advance() shrinks the view, as in the real crate
        assert_eq!(b.len(), 14);
        assert_eq!(b.as_ref().len(), 14);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_copies_subrange() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn big_endian_wire_format() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x0102_0304);
        assert_eq!(buf.freeze().as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.advance(3);
    }
}
