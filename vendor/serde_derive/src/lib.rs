//! Offline stand-in for `serde_derive`.
//!
//! This workspace is built in a network-isolated container, so the real
//! `serde`/`serde_derive` crates cannot be fetched from crates.io. Nothing in
//! the workspace actually serializes through serde (there is no `serde_json`
//! or similar consumer); the derives exist so that types are *ready* to be
//! serialized once the real dependency can be swapped in. The stand-in
//! therefore accepts the same derive syntax and expands to nothing.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
///
/// Accepts the `#[serde(...)]` helper attribute for forward compatibility.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
///
/// Accepts the `#[serde(...)]` helper attribute for forward compatibility.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
