//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This crate keeps the same test-author surface the workspace uses
//! — the [`proptest!`] macro, range/tuple/`collection::vec`/[`strategy::any`]
//! strategies, and the `prop_assert*` macros — on top of a small
//! deterministic runner. Differences from real proptest:
//!
//! * no shrinking: a failing case reports the generated inputs via the
//!   panic message of the underlying `assert!`, but is not minimized;
//! * cases are generated from a fixed per-test seed (hash of the test
//!   name), so runs are fully reproducible without a persistence file;
//! * the case count is 64 by default, overridable with the
//!   `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod strategy;

pub mod collection;

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The deterministic runner behind the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases each property runs (64, or `PROPTEST_CASES`).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Builds the per-test generator from the test's name, so every test
    /// sees a stable but distinct stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body across generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
            for __proptest_case in 0..$crate::test_runner::cases() {
                let _ = __proptest_case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )+};
}

/// `assert!` under a proptest-compatible name (no shrinking, so it simply
/// panics with the provided message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
