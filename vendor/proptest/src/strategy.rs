//! Value-generation strategies: integer ranges, tuples, and [`any`].

use rand::rngs::StdRng;
use rand::{Rng, UniformInt};
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking — a strategy
/// is just a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over a type's whole domain; the return type of [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
