//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range; the return type
/// of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// lies in `size`, e.g. `vec(0usize..2, 1..40)`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
