//! The full evaluation in miniature: every workload under every design, with
//! the Figure 12 speedup summary and the paper's headline averages.
//!
//! ```text
//! cargo run --release --example design_shootout [--quick]
//! ```

use rnuca_sim::{DesignComparison, ExperimentConfig, TextTable};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        let mut c = ExperimentConfig::full();
        c.warmup_refs = 300_000;
        c.measured_refs = 150_000;
        c.asr_best_of = false;
        c
    };

    println!(
        "Running {} workloads x 5 designs (parallel)...",
        rnuca_workloads::WorkloadSpec::evaluation_suite().len()
    );
    let comparison = DesignComparison::run_evaluation(&cfg);

    let mut table = TextTable::new(vec!["workload", "bucket", "A", "S", "R", "I"]);
    for w in &comparison.workloads {
        let baseline = w.private_baseline();
        let mut row = vec![
            w.workload.clone(),
            if w.private_averse {
                "private-averse".into()
            } else {
                "shared-averse".into()
            },
        ];
        for letter in ["A", "S", "R", "I"] {
            let s = w
                .by_letter(letter)
                .map(|r| format!("{:+.1}%", (r.speedup_over(baseline) - 1.0) * 100.0))
                .unwrap_or_default();
            row.push(s);
        }
        table.add_row(row);
    }
    println!("\nSpeedup over the private design (Figure 12):\n{table}");

    println!(
        "R-NUCA average speedup: {:+.1}% over private, {:+.1}% over shared; performance within {:.1}% of ideal",
        (comparison.mean_speedup("R", "P") - 1.0) * 100.0,
        (comparison.mean_speedup("R", "S") - 1.0) * 100.0,
        (1.0 - 1.0 / comparison.mean_speedup("I", "R")) * 100.0,
    );
}
