//! Quickstart: place blocks with R-NUCA and run a tiny design comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rnuca::placement::{PlacementConfig, PlacementEngine};
use rnuca_os::PageClass;
use rnuca_sim::{CmpSimulator, LlcDesign};
use rnuca_types::addr::BlockAddr;
use rnuca_types::config::SystemConfig;
use rnuca_types::ids::CoreId;
use rnuca_workloads::{TraceGenerator, WorkloadSpec};

fn main() {
    // 1. The 16-core tiled CMP of Table 1.
    let cfg = SystemConfig::server_16();
    println!(
        "System: {} cores, {} KB L2 slice per tile ({}-cycle hit), {}x{} folded torus",
        cfg.num_cores,
        cfg.l2_slice.geometry.capacity_bytes / 1024,
        cfg.l2_slice.hit_latency.value(),
        cfg.torus.width,
        cfg.torus.height
    );

    // 2. Ask the placement engine where each access class lands.
    let engine = PlacementEngine::new(PlacementConfig::from_system(&cfg));
    let core = CoreId::new(5);
    let block = BlockAddr::from_block_number(0xBEEF << 10);
    println!("\nPlacement decisions for core {core} and block {block}:");
    println!(
        "  private data  -> {}",
        engine.place(PageClass::Private, block, core)
    );
    println!(
        "  instructions  -> {}",
        engine.place(PageClass::Instruction, block, core)
    );
    println!(
        "  shared data   -> {}",
        engine.place(PageClass::Shared, block, core)
    );
    let cluster = engine.instruction_cluster(core);
    let members: Vec<String> = cluster.members().iter().map(ToString::to_string).collect();
    println!(
        "  instruction cluster of {core}: {{{}}}",
        members.join(", ")
    );

    // 3. Run a short OLTP trace under the shared design and under R-NUCA.
    let spec = WorkloadSpec::oltp_db2();
    println!(
        "\nSimulating {} ({} L2 refs warm-up + measure)...",
        spec.name,
        2 * 60_000
    );
    for design in [LlcDesign::Shared, LlcDesign::rnuca_default()] {
        let mut gen = TraceGenerator::new(&spec, 1);
        let mut sim = CmpSimulator::new(design, &spec);
        sim.run_warmup(&mut gen, 60_000);
        let run = sim.run_measured(&mut gen, 60_000);
        println!(
            "  {design:<45} total CPI {:.3} (L2 {:.3}, off-chip {:.3}, L1-to-L1 {:.3})",
            run.total_cpi(),
            run.cpi.breakdown.l2,
            run.cpi.breakdown.off_chip,
            run.cpi.breakdown.l1_to_l1
        );
    }
}
