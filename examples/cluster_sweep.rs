//! Instruction-cluster-size sweep (the Figure 11 experiment) for one workload.
//!
//! Small clusters keep instructions close but replicate them in every slice,
//! inflating capacity pressure and off-chip misses; large clusters spread the
//! working set thin and stretch access latency. Size 4 is the paper's sweet
//! spot for the 16-core configuration.
//!
//! ```text
//! cargo run --release --example cluster_sweep [workload]
//! ```

use rnuca_sim::report::fmt3;
use rnuca_sim::{DesignComparison, ExperimentConfig, LlcDesign, TextTable};
use rnuca_workloads::WorkloadSpec;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Apache".to_string());
    let spec = WorkloadSpec::evaluation_suite()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}, falling back to Apache");
            WorkloadSpec::apache()
        });

    let mut cfg = ExperimentConfig::full();
    cfg.warmup_refs = 300_000;
    cfg.measured_refs = 150_000;

    println!(
        "Instruction-cluster sweep for {} ({} cores):",
        spec.name,
        spec.num_cores()
    );
    let mut table = TextTable::new(vec![
        "cluster size",
        "total CPI",
        "total / size-1",
        "instr L2 CPI",
        "off-chip CPI",
    ]);
    let mut base = None;
    for size in [1usize, 2, 4, 8, 16] {
        if size > spec.num_cores() {
            continue;
        }
        let r = DesignComparison::run_single(
            &spec,
            LlcDesign::RNuca {
                instr_cluster_size: size,
            },
            &cfg,
        );
        let total = r.total_cpi();
        let base_val = *base.get_or_insert(total);
        table.add_row(vec![
            format!("size-{size}"),
            fmt3(total),
            fmt3(total / base_val),
            fmt3(r.run.cpi.l2_instructions),
            fmt3(r.run.cpi.breakdown.off_chip),
        ]);
    }
    println!("{table}");
}
