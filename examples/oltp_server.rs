//! Server-workload scenario: characterize an OLTP trace and compare all five
//! LLC designs on it, reproducing one bar group of Figures 7 and 12.
//!
//! ```text
//! cargo run --release --example oltp_server
//! ```

use rnuca_sim::report::{fmt3, fmt_pct};
use rnuca_sim::{DesignComparison, ExperimentConfig, TextTable};
use rnuca_workloads::{TraceCharacterization, TraceGenerator, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::oltp_db2();

    // Characterize the reference stream (Figures 2-4 for this workload).
    let mut gen = TraceGenerator::new(&spec, 7);
    let trace = gen.generate(150_000);
    let ch = TraceCharacterization::analyze(&trace, 64);
    println!(
        "{} L2 reference characterization ({} refs):",
        spec.name,
        trace.len()
    );
    println!(
        "  class mix: instr {} / private {} / shared-RW {} / shared-RO {}",
        fmt_pct(ch.breakdown.instructions),
        fmt_pct(ch.breakdown.private_data),
        fmt_pct(ch.breakdown.shared_read_write),
        fmt_pct(ch.breakdown.shared_read_only),
    );
    println!(
        "  instruction working set: 90% of fetches within {:.0} KB; shared data: 90% within {:.0} KB",
        ch.instr_cdf.kb_at_fraction(0.9),
        ch.shared_cdf.kb_at_fraction(0.9),
    );
    println!(
        "  instruction reuse by same core before another core intervenes: {:.0}%",
        ch.instr_reuse.reuse_fraction() * 100.0
    );

    // Compare the five designs.
    let mut cfg = ExperimentConfig::full();
    cfg.warmup_refs = 300_000;
    cfg.measured_refs = 150_000;
    cfg.asr_best_of = false;
    println!("\nRunning the P/A/S/R/I design comparison (this takes a few seconds)...");
    let results = DesignComparison::run_workload(&spec, &cfg);
    let base = results.private_baseline().total_cpi();

    let mut table = TextTable::new(vec![
        "design",
        "CPI",
        "CPI/private",
        "speedup",
        "off-chip rate",
    ]);
    for r in &results.results {
        table.add_row(vec![
            r.design.to_string(),
            fmt3(r.total_cpi()),
            fmt3(r.total_cpi() / base),
            format!(
                "{:+.1}%",
                (r.speedup_over(results.private_baseline()) - 1.0) * 100.0
            ),
            fmt_pct(r.run.off_chip_rate),
        ]);
    }
    println!("{table}");
    println!(
        "Workload bucket: {}",
        if results.private_averse {
            "private-averse"
        } else {
            "shared-averse"
        }
    );
}
